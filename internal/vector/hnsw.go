package vector

import (
	"container/heap"
	"fmt"
	"math"

	"unify/internal/embedding"
)

// HNSWConfig controls graph construction and search.
type HNSWConfig struct {
	M              int    // max links per node per layer (layer 0 uses 2M)
	EfConstruction int    // beam width during insertion
	EfSearch       int    // beam width during search
	Seed           uint64 // level-generator seed (deterministic builds)
}

// DefaultHNSWConfig mirrors common hnswlib defaults scaled for the corpus
// sizes used in the paper (1k-5k documents).
func DefaultHNSWConfig() HNSWConfig {
	return HNSWConfig{M: 16, EfConstruction: 128, EfSearch: 64, Seed: 1}
}

type hnswNode struct {
	id    int
	vec   []float32
	level int
	// links[l] lists neighbor slots (indices into nodes) at layer l.
	links [][]int32
}

// HNSW is a hierarchical navigable small-world graph index.
type HNSW struct {
	cfg    HNSWConfig
	nodes  []hnswNode
	byID   map[int]int32
	entry  int32 // slot of entry point, -1 if empty
	maxLvl int
	rng    uint64
	mult   float64 // level multiplier 1/ln(M)
}

// NewHNSW returns an empty HNSW index with the given configuration.
func NewHNSW(cfg HNSWConfig) *HNSW {
	if cfg.M < 2 {
		cfg.M = 2
	}
	if cfg.EfConstruction < cfg.M {
		cfg.EfConstruction = cfg.M * 4
	}
	if cfg.EfSearch < 1 {
		cfg.EfSearch = 16
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &HNSW{
		cfg:   cfg,
		byID:  make(map[int]int32),
		entry: -1,
		rng:   seed,
		mult:  1 / math.Log(float64(cfg.M)),
	}
}

// Len implements Index.
func (h *HNSW) Len() int { return len(h.nodes) }

// Config returns the (normalized) construction parameters, so a caller
// can rebuild an equivalent graph from scratch.
func (h *HNSW) Config() HNSWConfig { return h.cfg }

// nextFloat is a deterministic xorshift64* PRNG in (0,1).
func (h *HNSW) nextFloat() float64 {
	h.rng ^= h.rng >> 12
	h.rng ^= h.rng << 25
	h.rng ^= h.rng >> 27
	v := h.rng * 0x2545F4914F6CDD1D
	return (float64(v>>11) + 1) / (1 << 53)
}

func (h *HNSW) randomLevel() int {
	return int(-math.Log(h.nextFloat()) * h.mult)
}

func (h *HNSW) maxLinks(layer int) int {
	if layer == 0 {
		return h.cfg.M * 2
	}
	return h.cfg.M
}

// Add implements Index.
func (h *HNSW) Add(id int, vec []float32) error {
	if id < 0 {
		return fmt.Errorf("vector: negative id %d", id)
	}
	if _, dup := h.byID[id]; dup {
		return fmt.Errorf("vector: duplicate id %d", id)
	}
	level := h.randomLevel()
	slot := int32(len(h.nodes))
	node := hnswNode{id: id, vec: vec, level: level, links: make([][]int32, level+1)}
	h.nodes = append(h.nodes, node)
	h.byID[id] = slot

	if h.entry < 0 {
		h.entry = slot
		h.maxLvl = level
		return nil
	}

	ep := h.entry
	// Greedy descent through layers above the new node's level.
	for l := h.maxLvl; l > level; l-- {
		ep = h.greedyClosest(vec, ep, l)
	}
	// Insert with beam search on each layer from min(level, maxLvl) down.
	top := level
	if top > h.maxLvl {
		top = h.maxLvl
	}
	for l := top; l >= 0; l-- {
		cands := h.searchLayer(vec, ep, h.cfg.EfConstruction, l)
		neighbors := h.selectNeighbors(vec, cands, h.maxLinks(l))
		h.nodes[slot].links[l] = append(h.nodes[slot].links[l], neighbors...)
		for _, n := range neighbors {
			h.link(n, slot, l)
		}
		if len(cands) > 0 {
			ep = cands[0].slot
		}
	}
	if level > h.maxLvl {
		h.maxLvl = level
		h.entry = slot
	}
	return nil
}

// link adds dst to src's layer-l neighbor list, pruning to capacity by
// keeping the closest links.
func (h *HNSW) link(src, dst int32, l int) {
	node := &h.nodes[src]
	node.links[l] = append(node.links[l], dst)
	maxL := h.maxLinks(l)
	if len(node.links[l]) <= maxL {
		return
	}
	// Prune: keep the maxL closest neighbors to src.
	type cand struct {
		slot int32
		dist float64
	}
	cands := make([]cand, 0, len(node.links[l]))
	for _, n := range node.links[l] {
		cands = append(cands, cand{n, embedding.Distance(node.vec, h.nodes[n].vec)})
	}
	// Selection by partial sort (small lists).
	for i := 0; i < maxL; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].dist < cands[best].dist {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	kept := make([]int32, maxL)
	for i := 0; i < maxL; i++ {
		kept[i] = cands[i].slot
	}
	node.links[l] = kept
}

func (h *HNSW) greedyClosest(q []float32, ep int32, l int) int32 {
	cur := ep
	curDist := embedding.Distance(q, h.nodes[cur].vec)
	for {
		improved := false
		for _, n := range h.nodes[cur].links[l] {
			if d := embedding.Distance(q, h.nodes[n].vec); d < curDist {
				cur, curDist = n, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

type scored struct {
	slot int32
	dist float64
}

// minHeap orders by ascending distance (candidates to expand).
type minHeap []scored

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(scored)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// maxHeap orders by descending distance (result set, worst on top).
type maxHeap []scored

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(scored)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// searchLayer runs a beam search of width ef on layer l starting from ep.
// Results are sorted ascending by distance.
func (h *HNSW) searchLayer(q []float32, ep int32, ef, l int) []scored {
	visited := map[int32]bool{ep: true}
	start := scored{ep, embedding.Distance(q, h.nodes[ep].vec)}
	cands := &minHeap{start}
	res := &maxHeap{start}
	for cands.Len() > 0 {
		c := heap.Pop(cands).(scored)
		if res.Len() >= ef && c.dist > (*res)[0].dist {
			break
		}
		for _, n := range h.nodes[c.slot].links[l] {
			if visited[n] {
				continue
			}
			visited[n] = true
			d := embedding.Distance(q, h.nodes[n].vec)
			if res.Len() < ef || d < (*res)[0].dist {
				heap.Push(cands, scored{n, d})
				heap.Push(res, scored{n, d})
				if res.Len() > ef {
					heap.Pop(res)
				}
			}
		}
	}
	out := make([]scored, res.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(res).(scored)
	}
	return out
}

// selectNeighbors keeps the m closest candidates (simple selection, which
// is adequate at the corpus scales exercised here).
func (h *HNSW) selectNeighbors(q []float32, cands []scored, m int) []int32 {
	if len(cands) > m {
		cands = cands[:m]
	}
	out := make([]int32, len(cands))
	for i, c := range cands {
		out[i] = c.slot
	}
	return out
}

// Search implements Index.
func (h *HNSW) Search(query []float32, k int) []Result {
	if k <= 0 || h.entry < 0 {
		return nil
	}
	ep := h.entry
	for l := h.maxLvl; l > 0; l-- {
		ep = h.greedyClosest(query, ep, l)
	}
	ef := h.cfg.EfSearch
	if ef < k {
		ef = k
	}
	cands := h.searchLayer(query, ep, ef, 0)
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = Result{ID: h.nodes[c.slot].id, Distance: c.dist}
	}
	return out
}

var (
	_ Index = (*Flat)(nil)
	_ Index = (*HNSW)(nil)
)

// HNSWDump is the serializable form of an HNSW graph.
type HNSWDump struct {
	Cfg    HNSWConfig
	IDs    []int
	Vecs   [][]float32
	Levels []int
	Links  [][][]int32
	Entry  int32
	MaxLvl int
	RNG    uint64
}

// Export snapshots the graph for persistence.
func (h *HNSW) Export() *HNSWDump {
	d := &HNSWDump{
		Cfg:    h.cfg,
		IDs:    make([]int, len(h.nodes)),
		Vecs:   make([][]float32, len(h.nodes)),
		Levels: make([]int, len(h.nodes)),
		Links:  make([][][]int32, len(h.nodes)),
		Entry:  h.entry,
		MaxLvl: h.maxLvl,
		RNG:    h.rng,
	}
	for i, n := range h.nodes {
		d.IDs[i] = n.id
		d.Vecs[i] = n.vec
		d.Levels[i] = n.level
		links := make([][]int32, len(n.links))
		for l, ls := range n.links {
			links[l] = append([]int32(nil), ls...)
		}
		d.Links[i] = links
	}
	return d
}

// ImportHNSW reconstructs a graph from a dump.
func ImportHNSW(d *HNSWDump) (*HNSW, error) {
	if d == nil {
		return nil, fmt.Errorf("vector: nil HNSW dump")
	}
	n := len(d.IDs)
	if len(d.Vecs) != n || len(d.Levels) != n || len(d.Links) != n {
		return nil, fmt.Errorf("vector: inconsistent HNSW dump (%d/%d/%d/%d)",
			n, len(d.Vecs), len(d.Levels), len(d.Links))
	}
	h := NewHNSW(d.Cfg)
	h.rng = d.RNG
	h.entry = d.Entry
	h.maxLvl = d.MaxLvl
	h.nodes = make([]hnswNode, n)
	for i := 0; i < n; i++ {
		if _, dup := h.byID[d.IDs[i]]; dup {
			return nil, fmt.Errorf("vector: duplicate id %d in dump", d.IDs[i])
		}
		h.byID[d.IDs[i]] = int32(i)
		h.nodes[i] = hnswNode{
			id:    d.IDs[i],
			vec:   d.Vecs[i],
			level: d.Levels[i],
			links: d.Links[i],
		}
	}
	if n > 0 && (h.entry < 0 || int(h.entry) >= n) {
		return nil, fmt.Errorf("vector: dump entry point %d out of range", h.entry)
	}
	return h, nil
}
