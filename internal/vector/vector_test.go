package vector

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"unify/internal/embedding"
)

// randVec returns a random unit vector.
func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	var norm float64
	for i := range v {
		v[i] = float32(rng.NormFloat64())
		norm += float64(v[i]) * float64(v[i])
	}
	inv := float32(1 / math.Sqrt(norm))
	for i := range v {
		v[i] *= inv
	}
	return v
}

func TestFlatExactOrder(t *testing.T) {
	f := NewFlat()
	rng := rand.New(rand.NewSource(1))
	vecs := make([][]float32, 50)
	for i := range vecs {
		vecs[i] = randVec(rng, 16)
		if err := f.Add(i, vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	q := randVec(rng, 16)
	res := f.Search(q, 10)
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Distance < res[i-1].Distance {
			t.Fatal("results not sorted by distance")
		}
	}
	// Verify the top hit is the true nearest.
	best, bestD := -1, math.Inf(1)
	for i, v := range vecs {
		if d := embedding.Distance(q, v); d < bestD {
			best, bestD = i, d
		}
	}
	if res[0].ID != best {
		t.Errorf("top hit %d, want %d", res[0].ID, best)
	}
}

func TestFlatDuplicateAndNegative(t *testing.T) {
	f := NewFlat()
	v := []float32{1, 0}
	if err := f.Add(1, v); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(1, v); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := f.Add(-1, v); err == nil {
		t.Error("negative id accepted")
	}
}

func TestFlatDistances(t *testing.T) {
	f := NewFlat()
	f.Add(0, []float32{1, 0})
	f.Add(1, []float32{0, 1})
	d := f.Distances([]float32{1, 0})
	if d[0] > 1e-6 {
		t.Errorf("self distance %v", d[0])
	}
	if math.Abs(d[1]-1) > 1e-6 {
		t.Errorf("orthogonal distance %v, want 1", d[1])
	}
}

// TestHNSWRecall checks approximate search recall against the exact index
// — the correctness criterion for an ANN structure.
func TestHNSWRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, dim, k, queries = 800, 32, 10, 40
	flat := NewFlat()
	hnsw := NewHNSW(DefaultHNSWConfig())
	for i := 0; i < n; i++ {
		v := randVec(rng, dim)
		if err := flat.Add(i, v); err != nil {
			t.Fatal(err)
		}
		if err := hnsw.Add(i, v); err != nil {
			t.Fatal(err)
		}
	}
	var hit, total int
	for qi := 0; qi < queries; qi++ {
		q := randVec(rng, dim)
		exact := map[int]bool{}
		for _, r := range flat.Search(q, k) {
			exact[r.ID] = true
		}
		for _, r := range hnsw.Search(q, k) {
			if exact[r.ID] {
				hit++
			}
		}
		total += k
	}
	recall := float64(hit) / float64(total)
	if recall < 0.9 {
		t.Errorf("HNSW recall = %.3f, want >= 0.9", recall)
	}
}

func TestHNSWDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vecs := make([][]float32, 200)
	for i := range vecs {
		vecs[i] = randVec(rng, 16)
	}
	build := func() *HNSW {
		h := NewHNSW(DefaultHNSWConfig())
		for i, v := range vecs {
			h.Add(i, v)
		}
		return h
	}
	a, b := build(), build()
	q := randVec(rng, 16)
	ra, rb := a.Search(q, 5), b.Search(q, 5)
	if fmt.Sprint(ra) != fmt.Sprint(rb) {
		t.Errorf("non-deterministic HNSW: %v vs %v", ra, rb)
	}
}

func TestHNSWEmptyAndSmall(t *testing.T) {
	h := NewHNSW(DefaultHNSWConfig())
	if res := h.Search([]float32{1, 0}, 5); res != nil {
		t.Error("empty index returned results")
	}
	h.Add(42, []float32{1, 0})
	res := h.Search([]float32{1, 0}, 5)
	if len(res) != 1 || res[0].ID != 42 {
		t.Errorf("single-element search = %v", res)
	}
	if err := h.Add(42, []float32{0, 1}); err == nil {
		t.Error("duplicate id accepted")
	}
}

func TestIndexInterface(t *testing.T) {
	for _, idx := range []Index{NewFlat(), NewHNSW(DefaultHNSWConfig())} {
		if idx.Len() != 0 {
			t.Error("fresh index not empty")
		}
		idx.Add(0, []float32{1, 0, 0})
		idx.Add(1, []float32{0, 1, 0})
		if idx.Len() != 2 {
			t.Errorf("Len = %d", idx.Len())
		}
		res := idx.Search([]float32{1, 0, 0}, 1)
		if len(res) != 1 || res[0].ID != 0 {
			t.Errorf("nearest = %v, want id 0", res)
		}
	}
}
