// Package vector provides vector indexes for approximate and exact
// nearest-neighbor search over embedding vectors: a brute-force Flat index
// and a from-scratch HNSW graph (Malkov & Yashunin, the index the paper
// uses via hnswlib). The planner's IndexScan physical operator and the
// semantic cardinality estimator build on these.
package vector

import (
	"fmt"
	"sort"

	"unify/internal/embedding"
)

// Result is one nearest-neighbor hit.
type Result struct {
	ID       int
	Distance float64
}

// Index is the interface shared by Flat and HNSW.
type Index interface {
	// Add inserts a vector under the given non-negative id. Adding the
	// same id twice is an error.
	Add(id int, vec []float32) error
	// Search returns up to k nearest neighbors of query by cosine
	// distance, closest first.
	Search(query []float32, k int) []Result
	// Len returns the number of indexed vectors.
	Len() int
}

// Flat is an exact brute-force index. It is the reference implementation
// used to validate HNSW recall and the default for small collections.
type Flat struct {
	ids  []int
	vecs [][]float32
	byID map[int]int
}

// NewFlat returns an empty exact index.
func NewFlat() *Flat {
	return &Flat{byID: make(map[int]int)}
}

// Add implements Index.
func (f *Flat) Add(id int, vec []float32) error {
	if id < 0 {
		return fmt.Errorf("vector: negative id %d", id)
	}
	if _, dup := f.byID[id]; dup {
		return fmt.Errorf("vector: duplicate id %d", id)
	}
	f.byID[id] = len(f.ids)
	f.ids = append(f.ids, id)
	f.vecs = append(f.vecs, vec)
	return nil
}

// Len implements Index.
func (f *Flat) Len() int { return len(f.ids) }

// Vector returns the stored vector for id, or nil if absent.
func (f *Flat) Vector(id int) []float32 {
	if i, ok := f.byID[id]; ok {
		return f.vecs[i]
	}
	return nil
}

// Search implements Index.
func (f *Flat) Search(query []float32, k int) []Result {
	if k <= 0 || len(f.ids) == 0 {
		return nil
	}
	res := make([]Result, len(f.ids))
	for i, v := range f.vecs {
		res[i] = Result{ID: f.ids[i], Distance: embedding.Distance(query, v)}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Distance != res[j].Distance {
			return res[i].Distance < res[j].Distance
		}
		return res[i].ID < res[j].ID
	})
	if k > len(res) {
		k = len(res)
	}
	return res[:k]
}

// Distances returns the distance from query to every indexed vector,
// keyed by id. Used by the cardinality estimator to bucket the corpus.
func (f *Flat) Distances(query []float32) map[int]float64 {
	out := make(map[int]float64, len(f.ids))
	for i, v := range f.vecs {
		out[f.ids[i]] = embedding.Distance(query, v)
	}
	return out
}
