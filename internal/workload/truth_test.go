package workload

import (
	"fmt"
	"testing"

	"unify/internal/corpus"
)

// miniDataset builds a fully controlled corpus so template truths can be
// verified against hand computation.
func miniDataset() *corpus.Dataset {
	mk := func(id int, cat, asp string, views, score, year int) corpus.Doc {
		return corpus.Doc{
			ID:    id,
			Title: fmt.Sprintf("doc-%d", id),
			Text:  fmt.Sprintf("Title: doc-%d\nViews: %d\nScore: %d\nPosted: %d\nBody: x", id, views, score, year),
			Hidden: corpus.Hidden{
				Category: cat, Aspect: asp, Views: views, Score: score, Year: year,
			},
		}
	}
	return &corpus.Dataset{
		Name:        "mini",
		EntityWord:  "questions",
		CatClass:    "sport",
		AspectClass: "topic",
		CatWord:     "sport",
		AspectWord:  "topic",
		SubsetName:  "ball",
		Docs: []corpus.Doc{
			mk(0, "football", "injury", 1000, 10, 2015),
			mk(1, "football", "injury", 100, 5, 2012),
			mk(2, "football", "training", 500, 8, 2018),
			mk(3, "tennis", "injury", 800, 12, 2016),
			mk(4, "tennis", "training", 50, 4, 2011),
			mk(5, "tennis", "training", 900, 6, 2019),
			mk(6, "swimming", "injury", 700, 9, 2014),
			mk(7, "swimming", "rules", 300, 7, 2013),
			mk(8, "golf", "injury", 400, 3, 2017),
			mk(9, "golf", "training", 600, 11, 2020),
		},
	}
}

// truthOf finds the instance of a template built with specific literals by
// scanning generated queries; the generator is deterministic so the
// queries are stable.
func queriesFor(t *testing.T, tpl int) []Query {
	t.Helper()
	var out []Query
	for _, q := range Generate(miniDataset(), 5, 42) {
		if q.Template == tpl {
			out = append(out, q)
		}
	}
	if len(out) == 0 {
		t.Fatalf("template %d produced no instances", tpl)
	}
	return out
}

func TestHandComputedCountTruths(t *testing.T) {
	// Independently recompute every T1 truth by brute force.
	ds := miniDataset()
	for _, q := range queriesFor(t, 1) {
		// The query names one category and one views threshold; recover
		// them from the text via a crude scan over known literals.
		var cat string
		for _, c := range []string{"football", "tennis", "swimming", "golf"} {
			if containsWord(q.Text, c) {
				cat = c
			}
		}
		if cat == "" {
			t.Fatalf("no category literal in %q", q.Text)
		}
		threshold := extractInt(t, q.Text)
		want := 0
		for _, d := range ds.Docs {
			if d.Hidden.Category == cat && d.Hidden.Views > threshold {
				want++
			}
		}
		if q.Truth.Kind != Num || int(q.Truth.Num) != want {
			t.Errorf("%s: truth %v, hand-computed %d (%q)", q.ID, q.Truth.Num, want, q.Text)
		}
	}
}

func TestHandComputedCompareTruth(t *testing.T) {
	ds := miniDataset()
	for _, q := range queriesFor(t, 5) {
		if q.Truth.Kind != Choice || len(q.Truth.Accept) != 1 {
			t.Fatalf("%s: truth %+v", q.ID, q.Truth)
		}
		// Sides are the two aspects named in the query, in order.
		var aspects []string
		for _, token := range splitWords(q.Text) {
			switch token {
			case "injury", "training", "rules", "equipment", "nutrition", "history":
				aspects = append(aspects, token)
			}
		}
		if len(aspects) < 2 {
			t.Fatalf("%s: aspects not found in %q", q.ID, q.Text)
		}
		count := func(a string) int {
			n := 0
			for _, d := range ds.Docs {
				if d.Hidden.Aspect == a {
					n++
				}
			}
			return n
		}
		want := "first"
		if count(aspects[1]) > count(aspects[0]) {
			want = "second"
		}
		if q.Truth.Accept[0] != want {
			t.Errorf("%s: truth %q, hand %q (%q: %d vs %d)",
				q.ID, q.Truth.Accept[0], want, q.Text, count(aspects[0]), count(aspects[1]))
		}
	}
}

func TestHandComputedSubsetArgmax(t *testing.T) {
	// T20 on the mini corpus: ball sports are football, tennis, golf
	// (swimming excluded).
	for _, q := range queriesFor(t, 20) {
		if q.Truth.Kind != Label || len(q.Truth.Accept) == 0 {
			t.Fatalf("%s: truth %+v", q.ID, q.Truth)
		}
		for _, label := range q.Truth.Accept {
			if label == "swimming" {
				t.Errorf("%s: non-ball sport in subset argmax truth %v", q.ID, q.Truth.Accept)
			}
		}
	}
}

func TestHandComputedFraction(t *testing.T) {
	ds := miniDataset()
	for _, q := range queriesFor(t, 10) {
		var cat, asp string
		for _, token := range splitWords(q.Text) {
			switch token {
			case "football", "tennis", "swimming", "golf":
				cat = token
			case "injury", "training", "rules":
				asp = token
			}
		}
		if cat == "" || asp == "" {
			t.Fatalf("%s: literals not found in %q", q.ID, q.Text)
		}
		num, den := 0, 0
		for _, d := range ds.Docs {
			if d.Hidden.Category == cat {
				den++
				if d.Hidden.Aspect == asp {
					num++
				}
			}
		}
		want := float64(num) / float64(den)
		if q.Truth.Num != want {
			t.Errorf("%s: truth %v, hand %v", q.ID, q.Truth.Num, want)
		}
	}
}

// --- tiny text helpers ---

func splitWords(s string) []string {
	var out []string
	word := ""
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' {
			word += string(r)
		} else {
			if word != "" {
				out = append(out, word)
			}
			word = ""
		}
	}
	if word != "" {
		out = append(out, word)
	}
	return out
}

func containsWord(s, w string) bool {
	for _, tok := range splitWords(s) {
		if tok == w {
			return true
		}
	}
	return false
}

func extractInt(t *testing.T, s string) int {
	t.Helper()
	n, cur, found := 0, 0, false
	inNum := false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			cur = cur*10 + int(r-'0')
			inNum = true
		} else if inNum {
			n, found = cur, true
			break
		}
	}
	if inNum && !found {
		n, found = cur, true
	}
	if !found {
		t.Fatalf("no integer literal in %q", s)
	}
	return n
}
