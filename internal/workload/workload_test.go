package workload

import (
	"testing"

	"unify/internal/corpus"
	"unify/internal/nlq"
)

// TestTemplatesParseAndReduce verifies every generated query is inside
// the comprehension grammar and fully reducible.
func TestTemplatesParseAndReduce(t *testing.T) {
	for _, name := range corpus.Names() {
		ds, err := corpus.GenerateN(name, 400)
		if err != nil {
			t.Fatal(err)
		}
		qs := Generate(ds, 5, 42)
		if len(qs) < 95 {
			t.Errorf("%s: only %d queries generated", name, len(qs))
		}
		for _, q := range qs {
			parsed, err := nlq.Parse(q.Text)
			if err != nil {
				t.Errorf("%s %s: unparseable %q: %v", name, q.ID, q.Text, err)
				continue
			}
			next := 1
			for i := 0; i < 25 && !parsed.Solved(); i++ {
				apps := nlq.Applicable(parsed, next)
				var chosen string
				for _, op := range nlq.OperatorNames {
					if _, ok := apps[op]; ok {
						chosen = op
						break
					}
				}
				if chosen == "" {
					t.Errorf("%s %s: stuck reducing %q at %q", name, q.ID, q.Text, parsed.Render())
					break
				}
				red, _ := nlq.Reduce(parsed, chosen, next)
				parsed = red.Query
				next++
			}
			if !parsed.Solved() {
				t.Errorf("%s %s: not fully reduced: %q -> %q", name, q.ID, q.Text, parsed.Render())
			}
		}
	}
}

func TestScoreNumericTolerance(t *testing.T) {
	q := Query{Truth: Truth{Kind: Num, Num: 100}}
	cases := map[string]bool{
		"100":   true,
		"104":   true, // within 5%
		"96":    true,
		"107":   false, // beyond 5%
		"hello": false,
	}
	for ans, want := range cases {
		if got := Score(q, ans); got != want {
			t.Errorf("Score(%q vs 100) = %v, want %v", ans, got, want)
		}
	}
	// Small counts use the absolute tolerance of 2.
	small := Query{Truth: Truth{Kind: Num, Num: 3}}
	if !Score(small, "5") || Score(small, "6") {
		t.Error("absolute tolerance for small counts wrong")
	}
}

func TestScoreLabelsAndChoice(t *testing.T) {
	q := Query{Truth: Truth{Kind: Label, Accept: []string{"football", "tennis"}}}
	if !Score(q, "football") || !Score(q, "TENNIS") || Score(q, "golf") {
		t.Error("label tie-set scoring wrong")
	}
	ql := Query{Truth: Truth{Kind: Labels, Accept: []string{"a", "b"}}}
	if !Score(ql, "b, a") || Score(ql, "a") || Score(ql, "a, b, c") {
		t.Error("label set scoring wrong")
	}
	qc := Query{Truth: Truth{Kind: Choice, Accept: []string{"first"}}}
	if !Score(qc, " first ") || Score(qc, "second") {
		t.Error("choice scoring wrong")
	}
}

func TestTruthsMatchHiddenRecords(t *testing.T) {
	ds, err := corpus.GenerateN("sports", 600)
	if err != nil {
		t.Fatal(err)
	}
	qs := Generate(ds, 2, 7)
	// Re-derive a few truths independently.
	for _, q := range qs {
		if q.Template != 1 {
			continue
		}
		// T1: count cat with views threshold — recompute by brute force
		// over hidden records using the query's own literals via truth.
		if q.Truth.Kind != Num {
			t.Errorf("%s: T1 truth kind %s", q.ID, q.Truth.Kind)
		}
		if q.Truth.Num < 0 || q.Truth.Num > float64(len(ds.Docs)) {
			t.Errorf("%s: implausible truth %v", q.ID, q.Truth.Num)
		}
	}
}

func TestSemanticConditionsDeduped(t *testing.T) {
	ds, _ := corpus.GenerateN("law", 300)
	qs := Generate(ds, 3, 42)
	conds := SemanticConditions(qs)
	seen := map[string]bool{}
	for _, c := range conds {
		if seen[c] {
			t.Errorf("duplicate condition %q", c)
		}
		seen[c] = true
	}
	if len(conds) < 5 {
		t.Errorf("only %d distinct conditions", len(conds))
	}
}

func TestDeterministicWorkload(t *testing.T) {
	ds, _ := corpus.GenerateN("wiki", 300)
	a := Generate(ds, 3, 11)
	b := Generate(ds, 3, 11)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i].Text != b[i].Text || a[i].Truth.Num != b[i].Truth.Num {
			t.Fatal("workload not deterministic")
		}
	}
}

func TestAllTemplatesPresent(t *testing.T) {
	ds, _ := corpus.GenerateN("ai", 400)
	qs := Generate(ds, 5, 42)
	byTpl := map[int]int{}
	for _, q := range qs {
		byTpl[q.Template]++
	}
	for tpl := 1; tpl <= 20; tpl++ {
		if byTpl[tpl] == 0 {
			t.Errorf("template %d produced no instances", tpl)
		}
	}
}
