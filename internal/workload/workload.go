// Package workload generates the evaluation query workload of the paper's
// §VII-A: 20 manually designed templates per dataset, each instantiated
// with sampled literals and rendered in one of several equivalent
// natural-language variants, with ground truth computed from the corpus's
// hidden structured records (the paper computes ground truths manually —
// the hidden record is this reproduction's "manual" label).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"unify/internal/corpus"
	"unify/internal/lexicon"
)

// Kind classifies an expected answer.
type Kind string

// Answer kinds.
const (
	Num    Kind = "num"    // numeric, tolerance-scored
	Label  Kind = "label"  // one categorical label (tie set accepted)
	Labels Kind = "labels" // a set of labels
	Title  Kind = "title"  // a document title
	Titles Kind = "titles" // a set of document titles
	Choice Kind = "choice" // "first" or "second"
)

// Truth is the expected answer of a query.
type Truth struct {
	Kind Kind
	Num  float64
	// Accept lists acceptable exact answers (labels in a tie, the single
	// title, the choice). For Labels/Titles it is the expected set.
	Accept []string
}

// Query is one workload instance.
type Query struct {
	ID       string
	Template int // 1..20
	Text     string
	Truth    Truth
	// Conditions lists the semantic filter conditions the query contains
	// (the SCE evaluation of Table III runs on these).
	Conditions []string
	// USQL is the typed-dialect twin of Text for templates the USQL
	// grammar can express ("" otherwise). Both forms must produce
	// byte-identical answers — the usql_vs_nl differential axis runs on
	// these pairs.
	USQL string
}

// Generate builds perTemplate instances of each of the 20 templates for
// the dataset (the paper uses 5 per template = 100 queries).
func Generate(ds *corpus.Dataset, perTemplate int, seed int64) []Query {
	if perTemplate <= 0 {
		perTemplate = 5
	}
	g := &gen{ds: ds, rng: rand.New(rand.NewSource(seed))}
	var out []Query
	for tpl := 1; tpl <= 20; tpl++ {
		for i := 0; i < perTemplate; i++ {
			q, ok := g.instantiate(tpl, i)
			if ok {
				out = append(out, q)
			}
		}
	}
	return out
}

type gen struct {
	ds  *corpus.Dataset
	rng *rand.Rand
}

// --- hidden-record predicates ---

func (g *gen) catPred(c string) func(h corpus.Hidden) bool {
	return func(h corpus.Hidden) bool { return h.Category == c }
}

func (g *gen) aspPred(a string) func(h corpus.Hidden) bool {
	return func(h corpus.Hidden) bool { return h.Aspect == a }
}

func all(preds ...func(h corpus.Hidden) bool) func(h corpus.Hidden) bool {
	return func(h corpus.Hidden) bool {
		for _, p := range preds {
			if !p(h) {
				return false
			}
		}
		return true
	}
}

func (g *gen) docsWhere(pred func(h corpus.Hidden) bool) []corpus.Doc {
	var out []corpus.Doc
	for _, d := range g.ds.Docs {
		if pred(d.Hidden) {
			out = append(out, d)
		}
	}
	return out
}

func (g *gen) count(pred func(h corpus.Hidden) bool) int {
	return len(g.docsWhere(pred))
}

func fieldVals(docs []corpus.Doc, field string) []float64 {
	out := make([]float64, 0, len(docs))
	for _, d := range docs {
		switch field {
		case "views":
			out = append(out, float64(d.Hidden.Views))
		case "score":
			out = append(out, float64(d.Hidden.Score))
		}
	}
	return out
}

func aggVals(kind string, vals []float64, p int) float64 {
	if len(vals) == 0 {
		return 0
	}
	switch kind {
	case "sum":
		t := 0.0
		for _, v := range vals {
			t += v
		}
		return t
	case "avg":
		t := 0.0
		for _, v := range vals {
			t += v
		}
		return t / float64(len(vals))
	case "max":
		m := vals[0]
		for _, v := range vals {
			if v > m {
				m = v
			}
		}
		return m
	case "median":
		s := append([]float64(nil), vals...)
		sort.Float64s(s)
		mid := len(s) / 2
		if len(s)%2 == 1 {
			return s[mid]
		}
		return (s[mid-1] + s[mid]) / 2
	case "percentile":
		s := append([]float64(nil), vals...)
		sort.Float64s(s)
		idx := (p*len(s) + 99) / 100
		if idx < 1 {
			idx = 1
		}
		if idx > len(s) {
			idx = len(s)
		}
		return s[idx-1]
	default:
		return 0
	}
}

// --- literal sampling ---

// popularCats returns categories ordered by frequency (descending), so
// sampled literals reference populated groups.
func (g *gen) popularCats() []string {
	return g.popular(func(h corpus.Hidden) string { return h.Category })
}

func (g *gen) popularAsps() []string {
	return g.popular(func(h corpus.Hidden) string { return h.Aspect })
}

func (g *gen) popular(key func(h corpus.Hidden) string) []string {
	counts := map[string]int{}
	for _, d := range g.ds.Docs {
		counts[key(d.Hidden)]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if counts[names[i]] != counts[names[j]] {
			return counts[names[i]] > counts[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// viewsQuantile returns roughly the q-th quantile of view counts, rounded
// to a friendly literal.
func (g *gen) viewsQuantile(q float64) int {
	vals := fieldVals(g.ds.Docs, "views")
	sort.Float64s(vals)
	idx := int(q * float64(len(vals)))
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	v := int(vals[idx])
	switch {
	case v >= 2000:
		return v / 500 * 500
	case v >= 200:
		return v / 100 * 100
	default:
		return v/10*10 + 10
	}
}

// entity returns the dataset's entity word ("questions"/"articles").
func (g *gen) entity() string { return g.ds.EntityWord }

// pickVariant renders one of the surface variants deterministically.
func pickVariant(i int, variants ...string) string { return variants[i%len(variants)] }

func labelTieSet(vec map[string]float64, dir int) []string {
	best := math.Inf(-1)
	if dir < 0 {
		best = math.Inf(1)
	}
	for _, v := range vec {
		if (dir > 0 && v > best) || (dir < 0 && v < best) {
			best = v
		}
	}
	var out []string
	for k, v := range vec {
		if v == best {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func num(v float64) Truth { return Truth{Kind: Num, Num: v} }

// instantiate builds instance i of template tpl. ok is false when the
// dataset cannot support the template's literals.
func (g *gen) instantiate(tpl, i int) (Query, bool) {
	cats := g.popularCats()
	asps := g.popularAsps()
	if len(cats) < 3 || len(asps) < 3 {
		return Query{}, false
	}
	// Literals range across the popularity spectrum: early instances use
	// frequent concepts, later ones reach into the tail (rare predicates
	// are what stress cardinality estimation).
	catIdx := []int{1, 4, 7, 9, 11}[i%5]
	cat := cats[catIdx%len(cats)]
	cat2 := cats[(catIdx+1)%len(cats)]
	a1 := asps[(i*2)%min(len(asps), 5)]
	a2 := asps[(i*2+1)%min(len(asps), 5)]
	nViews := g.viewsQuantile([]float64{0.3, 0.45, 0.6, 0.75, 0.85}[i%5])
	nScore := []int{4, 5, 6, 8, 10}[i%5]
	year := []int{2013, 2015, 2017, 2019, 2012}[i%5]
	k := []int{3, 5, 10}[i%3]
	p := []int{75, 90, 95}[i%3]
	ent := g.entity()
	cw := g.ds.CatWord

	q := Query{Template: tpl, ID: fmt.Sprintf("%s-T%02d-%d", g.ds.Name, tpl, i)}
	switch tpl {
	case 1:
		q.Text = pickVariant(i,
			fmt.Sprintf("How many %s about %s have more than %d views?", ent, cat, nViews),
			fmt.Sprintf("Count the %s about %s with over %d views.", ent, cat, nViews),
			fmt.Sprintf("What is the number of %s regarding %s that have more than %d views?", ent, cat, nViews),
		)
		q.USQL = fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE 'related to %s' AND views > %d", g.ds.Name, cat, nViews)
		q.Conditions = []string{"related to " + cat}
		q.Truth = num(float64(g.count(all(g.catPred(cat), func(h corpus.Hidden) bool { return h.Views > nViews }))))
	case 2:
		q.Text = pickVariant(i,
			fmt.Sprintf("What is the average score of %s related to %s?", ent, a1),
			fmt.Sprintf("Compute the mean score of %s about %s.", ent, a1),
		)
		q.USQL = fmt.Sprintf("SELECT AVG(score) FROM %s WHERE 'related to %s'", g.ds.Name, a1)
		q.Conditions = []string{"related to " + a1}
		q.Truth = num(aggVals("avg", fieldVals(g.docsWhere(g.aspPred(a1)), "score"), 0))
	case 3:
		q.Text = pickVariant(i,
			fmt.Sprintf("Among %s with over %d views, which %s has the highest ratio of number of %s related to %s to number of %s related to %s?",
				ent, nViews, cw, ent, a1, ent, a2),
			fmt.Sprintf("Considering only %s with more than %d views, which %s shows the highest ratio of %s-related %s to %s-related %s?",
				ent, nViews, cw, a1, ent, a2, ent),
		)
		q.Conditions = []string{"related to " + a1, "related to " + a2}
		vec := map[string]float64{}
		for _, c := range cats {
			inj := g.count(all(g.catPred(c), g.aspPred(a1), func(h corpus.Hidden) bool { return h.Views > nViews }))
			trn := g.count(all(g.catPred(c), g.aspPred(a2), func(h corpus.Hidden) bool { return h.Views > nViews }))
			if trn > 0 {
				vec[c] = float64(inj) / float64(trn)
			}
		}
		if len(vec) == 0 {
			return Query{}, false
		}
		q.Truth = Truth{Kind: Label, Accept: labelTieSet(vec, 1)}
	case 4:
		q.Text = pickVariant(i,
			fmt.Sprintf("List the top %d most viewed %s about %s.", k, ent, cat),
			fmt.Sprintf("What are the %d %s about %s with the most views?", k, ent, cat),
		)
		q.USQL = fmt.Sprintf("SELECT * FROM %s WHERE 'related to %s' ORDER BY views DESC LIMIT %d", g.ds.Name, cat, k)
		q.Conditions = []string{"related to " + cat}
		docs := g.docsWhere(g.catPred(cat))
		sort.Slice(docs, func(x, y int) bool {
			if docs[x].Hidden.Views != docs[y].Hidden.Views {
				return docs[x].Hidden.Views > docs[y].Hidden.Views
			}
			return docs[x].ID < docs[y].ID
		})
		kk := min(k, len(docs))
		titles := make([]string, kk)
		for j := 0; j < kk; j++ {
			titles[j] = docs[j].Title
		}
		q.Truth = Truth{Kind: Titles, Accept: titles}
	case 5:
		q.Text = pickVariant(i,
			fmt.Sprintf("Are there more %s related to %s or %s related to %s?", ent, a1, ent, a2),
			fmt.Sprintf("Which is larger: the number of %s-related %s or the number of %s-related %s?", a1, ent, a2, ent),
		)
		q.Conditions = []string{"related to " + a1, "related to " + a2}
		c1, c2 := g.count(g.aspPred(a1)), g.count(g.aspPred(a2))
		want := "first"
		if c2 > c1 {
			want = "second"
		}
		q.Truth = Truth{Kind: Choice, Accept: []string{want}}
	case 6:
		q.Text = pickVariant(i,
			fmt.Sprintf("What is the maximum score among %s about %s?", ent, cat),
			fmt.Sprintf("What is the highest score of any %s about %s?", strings.TrimSuffix(ent, "s"), cat),
		)
		q.USQL = fmt.Sprintf("SELECT MAX(score) FROM %s WHERE 'related to %s'", g.ds.Name, cat)
		q.Conditions = []string{"related to " + cat}
		q.Truth = num(aggVals("max", fieldVals(g.docsWhere(g.catPred(cat)), "score"), 0))
	case 7:
		q.Text = pickVariant(i,
			fmt.Sprintf("How many %s posted after %d discuss %s?", ent, year, a1),
			fmt.Sprintf("Count the %s posted after %d that are related to %s.", ent, year, a1),
		)
		q.USQL = fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE year > %d AND 'related to %s'", g.ds.Name, year, a1)
		q.Conditions = []string{"related to " + a1}
		q.Truth = num(float64(g.count(all(g.aspPred(a1), func(h corpus.Hidden) bool { return h.Year > year }))))
	case 8:
		q.Text = pickVariant(i,
			fmt.Sprintf("What is the median number of views for %s about %s?", ent, cat),
			fmt.Sprintf("What is the median views of %s about %s?", ent, cat),
		)
		q.USQL = fmt.Sprintf("SELECT MEDIAN(views) FROM %s WHERE 'related to %s'", g.ds.Name, cat)
		q.Conditions = []string{"related to " + cat}
		q.Truth = num(aggVals("median", fieldVals(g.docsWhere(g.catPred(cat)), "views"), 0))
	case 9:
		q.Text = pickVariant(i,
			fmt.Sprintf("Which %s has the most %s with at least %d upvotes?", cw, ent, nScore),
			fmt.Sprintf("Which %s has the largest number of %s with at least %d upvotes?", cw, ent, nScore),
		)
		q.USQL = fmt.Sprintf("SELECT %s FROM %s WHERE upvotes >= %d GROUP BY %s ORDER BY COUNT(*) DESC LIMIT 1", cw, g.ds.Name, nScore, cw)
		vec := map[string]float64{}
		for _, c := range cats {
			vec[c] = float64(g.count(all(g.catPred(c), func(h corpus.Hidden) bool { return h.Score >= nScore })))
		}
		q.Truth = Truth{Kind: Label, Accept: labelTieSet(vec, 1)}
	case 10:
		q.Text = fmt.Sprintf("What fraction of %s about %s are related to %s?", ent, cat, a1)
		q.Conditions = []string{"related to " + cat, "related to " + a1}
		den := g.count(g.catPred(cat))
		if den == 0 {
			return Query{}, false
		}
		q.Truth = num(float64(g.count(all(g.catPred(cat), g.aspPred(a1)))) / float64(den))
	case 11:
		q.Text = pickVariant(i,
			fmt.Sprintf("How many %s about %s are related to %s?", ent, cat, a1),
			fmt.Sprintf("Count the %s about %s that are related to %s.", ent, cat, a1),
		)
		q.USQL = fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE 'related to %s' AND 'related to %s'", g.ds.Name, cat, a1)
		q.Conditions = []string{"related to " + cat, "related to " + a1}
		q.Truth = num(float64(g.count(all(g.catPred(cat), g.aspPred(a1)))))
	case 12:
		q.Text = fmt.Sprintf("How many %s are about %s or about %s?", ent, cat, cat2)
		q.Conditions = []string{"related to " + cat, "related to " + cat2}
		q.Truth = num(float64(g.count(func(h corpus.Hidden) bool {
			return h.Category == cat || h.Category == cat2
		})))
	case 13:
		q.Text = fmt.Sprintf("Which %ss appear both among %s with over %d views and among %s related to %s?",
			cw, ent, nViews, ent, a1)
		q.Conditions = []string{"related to " + a1}
		setA := map[string]bool{}
		for _, d := range g.docsWhere(func(h corpus.Hidden) bool { return h.Views > nViews }) {
			setA[d.Hidden.Category] = true
		}
		var both []string
		seen := map[string]bool{}
		for _, d := range g.docsWhere(g.aspPred(a1)) {
			c := d.Hidden.Category
			if setA[c] && !seen[c] {
				seen[c] = true
				both = append(both, c)
			}
		}
		sort.Strings(both)
		q.Truth = Truth{Kind: Labels, Accept: both}
	case 14:
		q.Text = pickVariant(i,
			fmt.Sprintf("What is the total number of views across %s about %s?", ent, cat),
			fmt.Sprintf("What is the total number of views of %s about %s?", ent, cat),
		)
		q.USQL = fmt.Sprintf("SELECT SUM(views) FROM %s WHERE 'related to %s'", g.ds.Name, cat)
		q.Conditions = []string{"related to " + cat}
		q.Truth = num(aggVals("sum", fieldVals(g.docsWhere(g.catPred(cat)), "views"), 0))
	case 15:
		q.Text = fmt.Sprintf("What is the %dth percentile of views for %s related to %s?", p, ent, a1)
		q.USQL = fmt.Sprintf("SELECT PERCENTILE(views, %d) FROM %s WHERE 'related to %s'", p, g.ds.Name, a1)
		q.Conditions = []string{"related to " + a1}
		q.Truth = num(aggVals("percentile", fieldVals(g.docsWhere(g.aspPred(a1)), "views"), p))
	case 16:
		q.Text = fmt.Sprintf("Rank the %ss by their number of %s-related %s and report the top 3.", cw, a1, ent)
		q.USQL = fmt.Sprintf("SELECT %s FROM %s WHERE 'related to %s' GROUP BY %s ORDER BY COUNT(*) DESC LIMIT 3", cw, g.ds.Name, a1, cw)
		q.Conditions = []string{"related to " + a1}
		vec := map[string]float64{}
		for _, c := range cats {
			vec[c] = float64(g.count(all(g.catPred(c), g.aspPred(a1))))
		}
		type kv struct {
			l string
			v float64
		}
		var list []kv
		for l, v := range vec {
			list = append(list, kv{l, v})
		}
		sort.Slice(list, func(x, y int) bool {
			if list[x].v != list[y].v {
				return list[x].v > list[y].v
			}
			return list[x].l < list[y].l
		})
		top := make([]string, 0, 3)
		for j := 0; j < len(list) && j < 3; j++ {
			top = append(top, list[j].l)
		}
		q.Truth = Truth{Kind: Labels, Accept: top}
	case 17:
		q.Text = fmt.Sprintf("Which %s about %s has the highest score?", strings.TrimSuffix(ent, "s"), cat)
		q.USQL = fmt.Sprintf("SELECT title FROM %s WHERE 'related to %s' ORDER BY score DESC LIMIT 1", g.ds.Name, cat)
		q.Conditions = []string{"related to " + cat}
		docs := g.docsWhere(g.catPred(cat))
		if len(docs) == 0 {
			return Query{}, false
		}
		best := docs[0]
		for _, d := range docs[1:] {
			if d.Hidden.Score > best.Hidden.Score ||
				(d.Hidden.Score == best.Hidden.Score && d.ID < best.ID) {
				best = d
			}
		}
		q.Truth = Truth{Kind: Title, Accept: []string{best.Title}}
	case 18:
		q.Text = pickVariant(i,
			fmt.Sprintf("How many %s about %s were posted before %d?", ent, cat, year),
			fmt.Sprintf("Count the %s about %s posted before %d.", ent, cat, year),
		)
		q.USQL = fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE 'related to %s' AND year < %d", g.ds.Name, cat, year)
		q.Conditions = []string{"related to " + cat}
		q.Truth = num(float64(g.count(all(g.catPred(cat), func(h corpus.Hidden) bool { return h.Year < year }))))
	case 19:
		q.Text = fmt.Sprintf("What is the average number of views of %s about %s that are related to %s?", ent, cat, a1)
		q.Conditions = []string{"related to " + cat, "related to " + a1}
		q.Truth = num(aggVals("avg", fieldVals(g.docsWhere(all(g.catPred(cat), g.aspPred(a1))), "views"), 0))
	case 20:
		sub, ok := lexicon.LookupSubset(g.ds.SubsetName)
		if !ok {
			return Query{}, false
		}
		q.Text = fmt.Sprintf("Among %ss %s, which one has the most %s related to %s?", cw, sub.Phrase, ent, a1)
		q.Conditions = []string{"related to " + a1}
		vec := map[string]float64{}
		for _, c := range cats {
			if !sub.Members[c] {
				continue
			}
			vec[c] = float64(g.count(all(g.catPred(c), g.aspPred(a1))))
		}
		if len(vec) == 0 {
			return Query{}, false
		}
		q.Truth = Truth{Kind: Label, Accept: labelTieSet(vec, 1)}
	default:
		return Query{}, false
	}
	return q, true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Score reports whether an answer string matches the query's ground
// truth. Numeric answers use a 5% relative (or small absolute) tolerance,
// matching how the paper treats aggregate answers computed over
// LLM-judged sets.
func Score(q Query, answer string) bool {
	answer = strings.TrimSpace(answer)
	switch q.Truth.Kind {
	case Num:
		v, err := strconv.ParseFloat(answer, 64)
		if err != nil {
			return false
		}
		want := q.Truth.Num
		tol := math.Max(2, 0.05*math.Abs(want))
		return math.Abs(v-want) <= tol
	case Label, Choice, Title:
		for _, a := range q.Truth.Accept {
			if strings.EqualFold(answer, a) {
				return true
			}
		}
		return false
	case Labels, Titles:
		got := splitList(answer)
		want := append([]string(nil), q.Truth.Accept...)
		if len(got) != len(want) {
			return false
		}
		sort.Strings(got)
		sort.Strings(want)
		for i := range got {
			if !strings.EqualFold(got[i], want[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// SemanticConditions collects the distinct semantic filter conditions of
// a workload (the predicates Table III estimates).
func SemanticConditions(queries []Query) []string {
	seen := map[string]bool{}
	var out []string
	for _, q := range queries {
		for _, c := range q.Conditions {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Strings(out)
	return out
}
