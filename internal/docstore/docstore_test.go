package docstore

import (
	"bytes"
	"fmt"
	"testing"
)

func mkDocs(n int) []Document {
	topics := []string{
		"football goalkeeper penalty match",
		"tennis racket serve volley",
		"chemistry laboratory experiment theory",
	}
	out := make([]Document, n)
	for i := range out {
		out[i] = Document{
			ID:    i,
			Title: fmt.Sprintf("doc %d", i),
			Text:  fmt.Sprintf("Title: doc %d\nViews: %d\nBody: this discusses %s.", i, 100+i, topics[i%len(topics)]),
		}
	}
	return out
}

func TestNewAndLookup(t *testing.T) {
	s, err := New("test", mkDocs(30))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 30 {
		t.Errorf("Len = %d", s.Len())
	}
	d, ok := s.Doc(7)
	if !ok || d.ID != 7 {
		t.Errorf("Doc(7) = %+v, %v", d, ok)
	}
	if _, ok := s.Doc(999); ok {
		t.Error("ghost doc found")
	}
	if ids := s.IDs(); len(ids) != 30 || ids[0] != 0 {
		t.Errorf("IDs = %v", ids[:3])
	}
	if v := s.Vector(3); v == nil {
		t.Error("missing vector")
	}
}

func TestDuplicateID(t *testing.T) {
	docs := mkDocs(2)
	docs[1].ID = 0
	if _, err := New("dup", docs); err == nil {
		t.Error("duplicate id accepted")
	}
}

func TestSearchDocsTopical(t *testing.T) {
	s, _ := New("test", mkDocs(30))
	res := s.SearchDocs("football penalty goalkeeper", 5)
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	// Top hits should be football docs (ids ≡ 0 mod 3).
	if res[0].ID%3 != 0 {
		t.Errorf("top hit %d is not a football doc", res[0].ID)
	}
	exact := s.SearchDocsExact("football penalty goalkeeper", 5)
	if exact[0].ID%3 != 0 {
		t.Errorf("exact top hit %d is not a football doc", exact[0].ID)
	}
}

func TestDistances(t *testing.T) {
	s, _ := New("test", mkDocs(12))
	d := s.Distances("tennis racket serve")
	if len(d) != 12 {
		t.Fatalf("distances for %d docs", len(d))
	}
	// A tennis doc must be closer than a chemistry doc.
	if d[1] >= d[2] {
		t.Errorf("tennis doc distance %v not below chemistry %v", d[1], d[2])
	}
}

func TestSentences(t *testing.T) {
	s, _ := New("test", mkDocs(9))
	sents := s.SearchSentences("football goalkeeper", 5)
	if len(sents) == 0 {
		t.Fatal("no sentences retrieved")
	}
	for _, sent := range sents {
		if sent.Text == "" {
			t.Error("empty sentence")
		}
	}
	// Disabled sentence index returns nil.
	s2, _ := New("nosent", mkDocs(5), WithoutSentences())
	if s2.SearchSentences("anything", 3) != nil {
		t.Error("disabled sentence index returned results")
	}
}

func TestSplitSentences(t *testing.T) {
	got := SplitSentences("One. Two! Three?\nFour line")
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	if got[3] != "Four line" {
		t.Errorf("last = %q", got[3])
	}
	if out := SplitSentences(""); len(out) != 0 {
		t.Errorf("empty text gave %v", out)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, err := New("persist", mkDocs(40))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() || loaded.Name != orig.Name {
		t.Fatalf("loaded %d docs as %q", loaded.Len(), loaded.Name)
	}
	// Document lookup survives.
	d, ok := loaded.Doc(7)
	if !ok || d.Title != "doc 7" {
		t.Errorf("Doc(7) = %+v", d)
	}
	// Searches produce identical results before and after.
	q := "football penalty goalkeeper"
	a := orig.SearchDocs(q, 5)
	b := loaded.SearchDocs(q, 5)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("HNSW search differs after reload:\n%v\n%v", a, b)
	}
	sa := orig.SearchSentences(q, 3)
	sb := loaded.SearchSentences(q, 3)
	if fmt.Sprint(sa) != fmt.Sprint(sb) {
		t.Errorf("sentence search differs after reload")
	}
	// The loaded index accepts further additions deterministically.
	if err := loaded.hnsw.Add(999, orig.Vector(0)); err != nil {
		t.Errorf("post-load Add failed: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestSaveLoadWithoutSentences(t *testing.T) {
	orig, _ := New("nosent", mkDocs(10), WithoutSentences())
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.SearchSentences("x", 3) != nil {
		t.Error("sentence index should stay disabled")
	}
}
