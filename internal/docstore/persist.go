package docstore

import (
	"encoding/gob"
	"fmt"
	"io"

	"unify/internal/embedding"
	"unify/internal/vector"
	"unify/internal/views"
)

// snapshot is the gob-serialized form of a Store: documents, embeddings
// and the HNSW graph, so reopening a collection skips the offline
// preprocessing phase entirely.
type snapshot struct {
	Version   int
	Name      string
	Dim       int
	Docs      []Document
	DocVecs   [][]float32
	Sentences []Sentence
	SentVecs  [][]float32
	HNSW      *vector.HNSWDump
	// Mutation state (version 1 additions; gob leaves them zero when
	// absent, matching the static corpora old snapshots describe).
	// Generation is the corpus mutation counter; HasSentIndex records
	// that the sentence index exists even when it is empty (gob encodes
	// an empty SentVecs as nil, which used to silently disable sentence
	// retrieval — and post-load ingestion — after a round-trip).
	Generation   uint64
	HasSentIndex bool
}

const snapshotVersion = 1

// Save serializes the store's full preprocessed state, including the
// mutation state (generation, content hashes are recomputed on load)
// that post-load ingestion needs.
func (s *Store) Save(w io.Writer) error {
	snap := snapshot{
		Version:      snapshotVersion,
		Name:         s.Name,
		Dim:          s.embedder.Dim(),
		Docs:         s.Docs,
		DocVecs:      s.docVecs,
		Sentences:    s.sentences,
		HNSW:         s.hnsw.Export(),
		Generation:   s.generation.Load(),
		HasSentIndex: s.sentIndex != nil,
	}
	if s.sentIndex != nil {
		snap.SentVecs = make([][]float32, len(s.sentences))
		for i := range s.sentences {
			snap.SentVecs[i] = s.sentIndex.Vector(i)
		}
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reconstructs a store from a snapshot produced by Save.
func Load(r io.Reader) (*Store, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("docstore: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("docstore: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if len(snap.DocVecs) != len(snap.Docs) {
		return nil, fmt.Errorf("docstore: snapshot has %d vectors for %d documents", len(snap.DocVecs), len(snap.Docs))
	}
	s := &Store{
		Name:     snap.Name,
		Docs:     snap.Docs,
		embedder: embedding.New(snap.Dim),
		docVecs:  snap.DocVecs,
		byID:     make(map[int]int, len(snap.Docs)),
		flat:     vector.NewFlat(),
		hashes:   make(map[int]uint64, len(snap.Docs)),
	}
	s.generation.Store(snap.Generation)
	for i, d := range snap.Docs {
		if _, dup := s.byID[d.ID]; dup {
			return nil, fmt.Errorf("docstore: duplicate document id %d in snapshot", d.ID)
		}
		s.byID[d.ID] = i
		s.hashes[d.ID] = views.DocHash(d.Title, d.Text)
		if err := s.flat.Add(d.ID, snap.DocVecs[i]); err != nil {
			return nil, err
		}
	}
	hnsw, err := vector.ImportHNSW(snap.HNSW)
	if err != nil {
		return nil, err
	}
	if hnsw.Len() != len(snap.Docs) {
		return nil, fmt.Errorf("docstore: HNSW has %d nodes for %d documents", hnsw.Len(), len(snap.Docs))
	}
	s.hnsw = hnsw
	// Reconstruct the construction options so post-load mutation
	// (AddDocs/UpdateDoc) reindexes exactly as the original store would:
	// the HNSW dump carries the normalized graph parameters and the RNG
	// stream position, so incremental inserts after a round-trip are
	// byte-identical to inserts into a never-persisted store.
	s.opts = options{dim: snap.Dim, hnswCfg: hnsw.Config(), withSent: snap.HasSentIndex || len(snap.SentVecs) > 0}
	if snap.SentVecs != nil {
		if len(snap.SentVecs) != len(snap.Sentences) {
			return nil, fmt.Errorf("docstore: snapshot has %d sentence vectors for %d sentences",
				len(snap.SentVecs), len(snap.Sentences))
		}
		s.sentences = snap.Sentences
	}
	if s.opts.withSent {
		s.sentIndex = vector.NewFlat()
		for i, v := range snap.SentVecs {
			if err := s.sentIndex.Add(i, v); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}
