package docstore

import (
	"encoding/gob"
	"fmt"
	"io"

	"unify/internal/embedding"
	"unify/internal/vector"
)

// snapshot is the gob-serialized form of a Store: documents, embeddings
// and the HNSW graph, so reopening a collection skips the offline
// preprocessing phase entirely.
type snapshot struct {
	Version   int
	Name      string
	Dim       int
	Docs      []Document
	DocVecs   [][]float32
	Sentences []Sentence
	SentVecs  [][]float32
	HNSW      *vector.HNSWDump
}

const snapshotVersion = 1

// Save serializes the store's full preprocessed state.
func (s *Store) Save(w io.Writer) error {
	snap := snapshot{
		Version:   snapshotVersion,
		Name:      s.Name,
		Dim:       s.embedder.Dim(),
		Docs:      s.Docs,
		DocVecs:   s.docVecs,
		Sentences: s.sentences,
		HNSW:      s.hnsw.Export(),
	}
	if s.sentIndex != nil {
		snap.SentVecs = make([][]float32, len(s.sentences))
		for i := range s.sentences {
			snap.SentVecs[i] = s.sentIndex.Vector(i)
		}
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reconstructs a store from a snapshot produced by Save.
func Load(r io.Reader) (*Store, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("docstore: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("docstore: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if len(snap.DocVecs) != len(snap.Docs) {
		return nil, fmt.Errorf("docstore: snapshot has %d vectors for %d documents", len(snap.DocVecs), len(snap.Docs))
	}
	s := &Store{
		Name:     snap.Name,
		Docs:     snap.Docs,
		embedder: embedding.New(snap.Dim),
		docVecs:  snap.DocVecs,
		byID:     make(map[int]int, len(snap.Docs)),
		flat:     vector.NewFlat(),
	}
	for i, d := range snap.Docs {
		if _, dup := s.byID[d.ID]; dup {
			return nil, fmt.Errorf("docstore: duplicate document id %d in snapshot", d.ID)
		}
		s.byID[d.ID] = i
		if err := s.flat.Add(d.ID, snap.DocVecs[i]); err != nil {
			return nil, err
		}
	}
	hnsw, err := vector.ImportHNSW(snap.HNSW)
	if err != nil {
		return nil, err
	}
	if hnsw.Len() != len(snap.Docs) {
		return nil, fmt.Errorf("docstore: HNSW has %d nodes for %d documents", hnsw.Len(), len(snap.Docs))
	}
	s.hnsw = hnsw
	if snap.SentVecs != nil {
		if len(snap.SentVecs) != len(snap.Sentences) {
			return nil, fmt.Errorf("docstore: snapshot has %d sentence vectors for %d sentences",
				len(snap.SentVecs), len(snap.Sentences))
		}
		s.sentences = snap.Sentences
		s.sentIndex = vector.NewFlat()
		for i, v := range snap.SentVecs {
			if err := s.sentIndex.Add(i, v); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}
