package docstore

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// storeFingerprint captures every byte of derived index state: the
// exported HNSW graph (vectors, links, levels, RNG position), the flat
// index order, sentences, and content hashes.
func storeFingerprint(t *testing.T, s *Store) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestAddDocsMatchesStaticBuild(t *testing.T) {
	docs := mkDocs(60)
	static, err := New("static", docs)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := New("static", docs[:40])
	if err != nil {
		t.Fatal(err)
	}
	if err := incr.AddDocs(docs[40:50]); err != nil {
		t.Fatal(err)
	}
	if err := incr.AddDocs(docs[50:]); err != nil {
		t.Fatal(err)
	}
	if incr.Generation() != 2 {
		t.Fatalf("generation = %d after two ingests", incr.Generation())
	}

	// Force both generations equal before comparing persisted bytes:
	// everything else — vectors, HNSW graph and RNG, sentences — must
	// be byte-identical between the static and incremental builds.
	static.generation.Store(incr.Generation())
	if storeFingerprint(t, static) != storeFingerprint(t, incr) {
		t.Fatal("incremental build diverges from static build")
	}

	// Search behavior is identical too.
	for _, q := range []string{"tennis serve", "chemistry theory", "football match"} {
		a := static.SearchDocs(q, 7)
		b := incr.SearchDocs(q, 7)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("SearchDocs(%q) diverges: %v vs %v", q, a, b)
		}
	}
}

func TestAddDocsRejectsDuplicatesAtomically(t *testing.T) {
	s, err := New("d", mkDocs(10))
	if err != nil {
		t.Fatal(err)
	}
	before := s.Len()
	add := []Document{{ID: 100, Text: "new"}, {ID: 5, Text: "dup"}}
	if err := s.AddDocs(add); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if s.Len() != before || s.Generation() != 0 {
		t.Fatalf("failed ingest mutated the store: len %d gen %d", s.Len(), s.Generation())
	}
}

func TestUpdateDocMatchesColdBuild(t *testing.T) {
	docs := mkDocs(40)
	s, err := New("u", docs)
	if err != nil {
		t.Fatal(err)
	}
	mutated := Document{ID: 13, Title: "doc 13 v2", Text: "Title: doc 13 v2\nViews: 999\nBody: now about archery."}
	if err := s.UpdateDoc(mutated); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != 1 {
		t.Fatalf("generation = %d after update", s.Generation())
	}
	coldDocs := append([]Document(nil), docs...)
	coldDocs[13] = mutated
	cold, err := New("u", coldDocs)
	if err != nil {
		t.Fatal(err)
	}
	cold.generation.Store(1)
	if storeFingerprint(t, s) != storeFingerprint(t, cold) {
		t.Fatal("update path diverges from a cold build over the mutated corpus")
	}

	h, ok := s.ContentHash(13)
	if !ok {
		t.Fatal("no content hash for updated doc")
	}
	hc, _ := cold.ContentHash(13)
	if h != hc {
		t.Fatal("content hash differs from cold build")
	}
	if err := s.UpdateDoc(Document{ID: 999}); err == nil {
		t.Fatal("update of unknown id accepted")
	}
}

func TestRoundTripPreservesMutationState(t *testing.T) {
	docs := mkDocs(50)
	live, err := New("rt", docs[:40])
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := live.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Post-load ingestion must be byte-identical to ingestion into the
	// never-persisted store: same options, hashes, HNSW RNG position.
	if err := live.AddDocs(docs[40:]); err != nil {
		t.Fatal(err)
	}
	if err := loaded.AddDocs(docs[40:]); err != nil {
		t.Fatal(err)
	}
	if storeFingerprint(t, live) != storeFingerprint(t, loaded) {
		t.Fatal("post-load ingest diverges from never-persisted ingest")
	}
	if loaded.Generation() != live.Generation() {
		t.Fatalf("generation %d vs %d", loaded.Generation(), live.Generation())
	}

	// UpdateDoc needs the reconstructed construction options.
	upd := Document{ID: 3, Title: "doc 3 v2", Text: "Body: rewritten."}
	if err := live.UpdateDoc(upd); err != nil {
		t.Fatal(err)
	}
	if err := loaded.UpdateDoc(upd); err != nil {
		t.Fatal(err)
	}
	if storeFingerprint(t, live) != storeFingerprint(t, loaded) {
		t.Fatal("post-load update diverges from never-persisted update")
	}

	// A second round-trip carries the bumped generation.
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	again, err := Load(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if again.Generation() != loaded.Generation() {
		t.Fatalf("generation dropped by round-trip: %d vs %d", again.Generation(), loaded.Generation())
	}
}

func TestRoundTripPreservesEmptySentenceIndex(t *testing.T) {
	// A store whose documents produce no sentences still has a sentence
	// index; gob encodes the empty vector slice as nil, which used to
	// disable sentence retrieval (and sentence ingestion) after a
	// round-trip.
	s, err := New("empty-sent", []Document{{ID: 1, Title: "t", Text: ""}})
	if err != nil {
		t.Fatal(err)
	}
	if s.sentIndex == nil {
		t.Fatal("precondition: sentence index missing")
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.sentIndex == nil {
		t.Fatal("round-trip dropped the (empty) sentence index")
	}
	if err := loaded.AddDocs([]Document{{ID: 2, Title: "u", Text: "One sentence."}}); err != nil {
		t.Fatal(err)
	}
	if got := loaded.SearchSentences("sentence", 1); len(got) != 1 {
		t.Fatalf("sentence retrieval broken after round-trip ingest: %v", got)
	}
}

func TestShardingExtendFreezesExistingAssignments(t *testing.T) {
	docs := mkDocs(80)
	s, err := New("sh", docs[:60])
	if err != nil {
		t.Fatal(err)
	}
	sh := s.Shard(nil, 4)
	before := sh.Assignment()

	if err := s.AddDocs(docs[60:]); err != nil {
		t.Fatal(err)
	}
	sh.Extend(docs[60:])
	after := sh.Assignment()
	if len(after) <= len(before) || after[:len(before)] != before {
		t.Fatalf("Extend rewrote existing assignments:\nbefore %q\nafter  %q", before, after)
	}
	// Every new id is assigned, and to the same shard a static sharding
	// of the full corpus would choose (the partitioner is pure).
	full, err := New("sh", docs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := after, full.Shard(nil, 4).Assignment(); got != want {
		t.Fatalf("extended assignment diverges from static:\n%q\n%q", got, want)
	}
	counts := 0
	for _, c := range sh.Counts() {
		counts += c
	}
	if counts != 80 {
		t.Fatalf("extended sharding covers %d docs, want 80", counts)
	}
	// Extend is idempotent for already-assigned ids.
	sh.Extend(docs)
	if sh.Assignment() != after {
		t.Fatal("re-Extend mutated the assignment")
	}
	_ = fmt.Sprint(sh)
}
