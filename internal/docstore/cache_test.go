package docstore

import (
	"testing"

	"unify/internal/cache"
)

func TestDistancesCached(t *testing.T) {
	docs := []Document{
		{ID: 1, Text: "apples fall from trees"},
		{ID: 2, Text: "planets orbit the sun"},
		{ID: 3, Text: "rivers flow to the sea"},
	}
	s, err := New("t", docs, WithoutSentences())
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(1 << 20)
	s.AttachCache(c)

	m1 := s.Distances("gravity")
	if got := s.DistanceScans(); got != 1 {
		t.Fatalf("scans = %d, want 1", got)
	}
	m2 := s.Distances("gravity")
	if got := s.DistanceScans(); got != 1 {
		t.Fatalf("repeat query scans = %d, want 1", got)
	}
	if len(m1) != len(docs) || len(m2) != len(docs) {
		t.Fatalf("distance map sizes %d/%d, want %d", len(m1), len(m2), len(docs))
	}
	for id, d := range m1 {
		if m2[id] != d {
			t.Fatalf("cached distances differ at id %d", id)
		}
	}
	s.Distances("oceans")
	if got := s.DistanceScans(); got != 2 {
		t.Fatalf("distinct query scans = %d, want 2", got)
	}
	st := c.LayerStats()
	if st["distance"].Hits != 1 || st["distance"].Misses != 2 {
		t.Fatalf("distance layer stats = %+v", st["distance"])
	}
	if st["embed"].Misses == 0 {
		t.Fatal("query embeddings not routed through the cache")
	}
}

func TestUncachedStoreStillWorks(t *testing.T) {
	docs := []Document{{ID: 1, Text: "a b c"}, {ID: 2, Text: "d e f"}}
	s, err := New("t", docs, WithoutSentences())
	if err != nil {
		t.Fatal(err)
	}
	// No AttachCache: every call computes, counters still advance.
	s.Distances("q")
	s.Distances("q")
	if got := s.DistanceScans(); got != 2 {
		t.Fatalf("uncached scans = %d, want 2", got)
	}
	if len(s.SearchDocs("q", 1)) != 1 {
		t.Fatal("SearchDocs failed without cache")
	}
}
