package docstore

import (
	"testing"
)

// TestHashPartitionerPinned pins the hash partitioner's assignment bytes
// for the first 16 document ids: the shard layout is part of the
// cross-machine determinism contract, so a silent change to the hash or
// its encoding must fail loudly here.
func TestHashPartitionerPinned(t *testing.T) {
	s, err := New("test", mkDocs(16))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		shards int
		want   string
	}{
		{2, "1 0 1 0 1 0 1 0 1 0 0 1 0 1 0 1"},
		{4, "3 0 1 2 3 0 1 2 3 0 0 3 2 1 0 3"},
	} {
		sh := s.Shard(nil, tc.shards)
		if got := sh.Assignment(); got != tc.want {
			t.Errorf("shards=%d assignment %q, want %q", tc.shards, got, tc.want)
		}
	}
}

// TestShardingDeterministic asserts repeated materializations over the
// same store yield byte-identical assignments — every machine derives
// the same layout independently.
func TestShardingDeterministic(t *testing.T) {
	s, err := New("test", mkDocs(200))
	if err != nil {
		t.Fatal(err)
	}
	first := s.Shard(nil, 4).Assignment()
	for i := 0; i < 5; i++ {
		if got := s.Shard(HashPartitioner{}, 4).Assignment(); got != first {
			t.Fatalf("materialization %d diverged:\n%s\n%s", i, got, first)
		}
	}
}

// TestShardingSplitCoversAll asserts Split partitions a doc-id slice
// without loss, preserves input order within shards, and yields exactly
// N groups so scatter operators can account for every shard.
func TestShardingSplitCoversAll(t *testing.T) {
	s, err := New("test", mkDocs(100))
	if err != nil {
		t.Fatal(err)
	}
	sh := s.Shard(nil, 4)

	counts := sh.Counts()
	total := 0
	for m, c := range counts {
		if c == 0 {
			t.Errorf("shard %d holds no documents", m)
		}
		total += c
	}
	if total != 100 {
		t.Fatalf("counts sum %d, want 100", total)
	}

	ids := make([]int, 100)
	for i := range ids {
		ids[i] = 99 - i // reverse order: Split must preserve it per shard
	}
	groups := sh.Split(ids)
	if len(groups) != 4 {
		t.Fatalf("Split yielded %d groups, want 4", len(groups))
	}
	seen := 0
	for m, g := range groups {
		last := 100
		for _, id := range g {
			if sh.Of(id) != m {
				t.Fatalf("doc %d in group %d but assigned to shard %d", id, m, sh.Of(id))
			}
			if id >= last {
				t.Fatalf("group %d out of input order: %v", m, g)
			}
			last = id
			seen++
		}
	}
	if seen != 100 {
		t.Fatalf("Split covered %d ids, want 100", seen)
	}

	// Unknown ids fall to shard 0 rather than vanishing.
	if sh.Of(12345) != 0 {
		t.Fatalf("unknown id assigned to shard %d, want 0", sh.Of(12345))
	}
}
