package docstore

import (
	"fmt"
	"hash/fnv"
	"strconv"
)

// Partitioner assigns documents to corpus shards. Implementations must
// be pure functions of the document and the shard count so that every
// machine — and every repeated run — derives the same assignment.
// Hash partitioning by id is the default; embedding-space partitioning
// can plug in here later without touching the scatter operators.
type Partitioner interface {
	// Name identifies the partitioner in stats and plan signatures.
	Name() string
	// Shard maps a document to a shard in [0, shards).
	Shard(doc Document, shards int) int
}

// HashPartitioner shards by FNV-1a over the decimal document id — cheap,
// stateless, and uniform enough for the synthetic corpora.
type HashPartitioner struct{}

// Name implements Partitioner.
func (HashPartitioner) Name() string { return "hash" }

// Shard implements Partitioner.
func (HashPartitioner) Shard(doc Document, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(strconv.Itoa(doc.ID)))
	return int(h.Sum32() % uint32(shards))
}

// Sharding is a store's materialized shard assignment: the partitioner
// applied once over the collection, queryable per document id.
type Sharding struct {
	N     int // shard count
	part  Partitioner
	byDoc map[int]int // doc id -> shard
	order []int       // shard per document in collection order
}

// Shard materializes a shard assignment over the store with the given
// partitioner (nil means HashPartitioner). Shard counts below 2 yield a
// single all-docs shard, mirroring the single-machine layout.
func (s *Store) Shard(p Partitioner, shards int) *Sharding {
	if p == nil {
		p = HashPartitioner{}
	}
	if shards < 1 {
		shards = 1
	}
	sh := &Sharding{
		N:     shards,
		part:  p,
		byDoc: make(map[int]int, len(s.Docs)),
		order: make([]int, len(s.Docs)),
	}
	for i, d := range s.Docs {
		m := p.Shard(d, shards)
		if m < 0 || m >= shards {
			m = 0
		}
		sh.byDoc[d.ID] = m
		sh.order[i] = m
	}
	return sh
}

// Partitioner reports the partitioner behind the assignment.
func (sh *Sharding) Partitioner() Partitioner { return sh.part }

// Extend appends shard assignments for newly ingested documents.
// Existing assignments are frozen — the determinism goldens pin the
// Assignment() prefix, and moving a resident document between shards
// would break scatter's shard_complete accounting mid-flight — so only
// unseen ids are assigned, in the given (ingest) order. Updates to
// existing documents never change their shard.
func (sh *Sharding) Extend(docs []Document) {
	for _, d := range docs {
		if _, ok := sh.byDoc[d.ID]; ok {
			continue
		}
		m := sh.part.Shard(d, sh.N)
		if m < 0 || m >= sh.N {
			m = 0
		}
		sh.byDoc[d.ID] = m
		sh.order = append(sh.order, m)
	}
}

// Of returns a document's shard (0 for unknown ids, which scatter
// treats as shard-0 residents so no document is ever dropped).
func (sh *Sharding) Of(docID int) int {
	if sh == nil {
		return 0
	}
	return sh.byDoc[docID]
}

// Split partitions a doc-id slice by shard, preserving the input order
// within each shard. The result always has exactly N groups (empty
// groups included) so scatter operators can account for every shard.
func (sh *Sharding) Split(docIDs []int) [][]int {
	out := make([][]int, sh.N)
	for _, id := range docIDs {
		m := sh.Of(id)
		out[m] = append(out[m], id)
	}
	return out
}

// Assignment renders the full shard assignment in collection order —
// one byte-stable string per corpus, pinned by the determinism tests.
func (sh *Sharding) Assignment() string {
	b := make([]byte, 0, len(sh.order)*2)
	for i, m := range sh.order {
		if i > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendInt(b, int64(m), 10)
	}
	return string(b)
}

// Counts reports the number of documents per shard.
func (sh *Sharding) Counts() []int {
	c := make([]int, sh.N)
	for _, m := range sh.order {
		c[m]++
	}
	return c
}

// String describes the sharding for logs and /v1/stats.
func (sh *Sharding) String() string {
	return fmt.Sprintf("%s/%d", sh.part.Name(), sh.N)
}
