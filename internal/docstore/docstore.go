// Package docstore holds a collection of plain-text documents and the
// offline preprocessing Unify performs over it (paper §III-A): document
// and sentence embeddings, and vector indexes for IndexScan and retrieval.
package docstore

import (
	"fmt"
	"strings"
	"sync/atomic"

	"unify/internal/cache"
	"unify/internal/embedding"
	"unify/internal/vector"
	"unify/internal/views"
)

// Document is one unstructured item. Text is everything the analytics
// system may look at.
type Document struct {
	ID    int
	Title string
	Text  string
}

// Store is an indexed document collection.
type Store struct {
	Name string
	Docs []Document

	embedder *embedding.Embedder
	docVecs  [][]float32
	byID     map[int]int

	// Incremental-ingestion state: the construction options (so AddDocs
	// and UpdateDoc reindex exactly as New would), per-document content
	// hashes, and the corpus generation — bumped on every mutation and
	// threaded into every cache namespace key so nothing stale survives.
	opts       options
	hashes     map[int]uint64
	generation atomic.Uint64

	flat *vector.Flat
	hnsw *vector.HNSW

	// Sentence-level retrieval structures for RAG-style access.
	sentences []Sentence
	sentIndex *vector.Flat

	// Query-text caching (see AttachCache): repeated predicates skip
	// re-embedding and the O(N·dim) linear distance scan.
	queryVecs *cache.Layer[[]float32]
	distMaps  *cache.Layer[map[int]float64]
	// distScans counts full linear distance scans actually executed
	// (cache misses included, hits excluded).
	distScans atomic.Int64
}

// Sentence is one retrievable sentence with its source document.
type Sentence struct {
	DocID int
	Text  string
}

// Option configures store construction.
type Option func(*options)

type options struct {
	dim      int
	hnswCfg  vector.HNSWConfig
	withSent bool
}

// WithDim sets the embedding dimensionality.
func WithDim(dim int) Option { return func(o *options) { o.dim = dim } }

// WithHNSW overrides the HNSW construction parameters.
func WithHNSW(cfg vector.HNSWConfig) Option { return func(o *options) { o.hnswCfg = cfg } }

// WithoutSentences skips the sentence-level index (saves preprocessing
// time when no RAG baseline runs).
func WithoutSentences() Option { return func(o *options) { o.withSent = false } }

// New builds a store over docs, embedding every document (and sentence)
// and constructing both the exact and the HNSW index. This is Unify's
// offline preprocessing step.
func New(name string, docs []Document, opts ...Option) (*Store, error) {
	o := options{dim: embedding.DefaultDim, hnswCfg: vector.DefaultHNSWConfig(), withSent: true}
	for _, f := range opts {
		f(&o)
	}
	s := &Store{
		Name:     name,
		embedder: embedding.New(o.dim),
		byID:     make(map[int]int, len(docs)),
		flat:     vector.NewFlat(),
		hnsw:     vector.NewHNSW(o.hnswCfg),
		opts:     o,
		hashes:   make(map[int]uint64, len(docs)),
	}
	if o.withSent {
		s.sentIndex = vector.NewFlat()
	}
	if err := s.indexDocs(docs); err != nil {
		return nil, err
	}
	return s, nil
}

// indexDocs appends docs to every index: document embeddings first (in
// order), then the sentence structures for the same span. AddDocs uses
// the identical sequence, so building a corpus incrementally produces
// byte-for-byte the same vectors, HNSW graph (same insertion order,
// same RNG stream), and sentence ids as a one-shot New over the full
// collection in the same order.
func (s *Store) indexDocs(docs []Document) error {
	for _, d := range docs {
		if _, dup := s.byID[d.ID]; dup {
			return fmt.Errorf("docstore: duplicate document id %d", d.ID)
		}
	}
	for _, d := range docs {
		s.byID[d.ID] = len(s.Docs)
		s.Docs = append(s.Docs, d)
		v := s.embedder.Embed(d.Text)
		s.docVecs = append(s.docVecs, v)
		if err := s.flat.Add(d.ID, v); err != nil {
			return err
		}
		if err := s.hnsw.Add(d.ID, v); err != nil {
			return err
		}
		s.hashes[d.ID] = views.DocHash(d.Title, d.Text)
	}
	if s.sentIndex != nil {
		sid := len(s.sentences)
		for _, d := range docs {
			for _, sent := range SplitSentences(d.Text) {
				s.sentences = append(s.sentences, Sentence{DocID: d.ID, Text: sent})
				if err := s.sentIndex.Add(sid, s.embedder.Embed(sent)); err != nil {
					return err
				}
				sid++
			}
		}
	}
	return nil
}

// AddDocs ingests new documents into every index (document vectors,
// HNSW, sentence retrieval) and bumps the corpus generation. Ids must
// be new; use UpdateDoc to change an existing document. The caller is
// responsible for quiescing queries during the mutation (unify.System
// serializes ingests and runs them outside any query).
func (s *Store) AddDocs(docs []Document) error {
	if len(docs) == 0 {
		return nil
	}
	if err := s.indexDocs(docs); err != nil {
		return err
	}
	s.generation.Add(1)
	return nil
}

// UpdateDoc replaces an existing document's content and deterministically
// reindexes the store from scratch (HNSW has no delete; a full rebuild
// in collection order with a fresh level RNG is byte-identical to a cold
// build over the mutated corpus, which is exactly the equivalence the
// ingest determinism tests pin). Bumps the corpus generation.
func (s *Store) UpdateDoc(d Document) error {
	i, ok := s.byID[d.ID]
	if !ok {
		return fmt.Errorf("docstore: update of unknown document id %d", d.ID)
	}
	s.Docs[i] = d

	docs := s.Docs
	s.Docs = nil
	s.docVecs = nil
	s.byID = make(map[int]int, len(docs))
	s.hashes = make(map[int]uint64, len(docs))
	s.flat = vector.NewFlat()
	s.hnsw = vector.NewHNSW(s.opts.hnswCfg)
	if s.sentIndex != nil {
		s.sentIndex = vector.NewFlat()
		s.sentences = nil
	}
	if err := s.indexDocs(docs); err != nil {
		return err
	}
	s.generation.Add(1)
	return nil
}

// Generation reports how many times the corpus has been mutated since
// construction (0 for a static corpus, persisted across Save/Load).
// Every plan/selectivity/SCE cache key embeds it, so a mutation
// invalidates all derived state at once.
func (s *Store) Generation() uint64 { return s.generation.Load() }

// ContentHash returns the live content hash of a document, the
// freshness token for materialized view rows.
func (s *Store) ContentHash(id int) (uint64, bool) {
	h, ok := s.hashes[id]
	return h, ok
}

// AttachCache routes query embeddings and distance maps through the
// shared cache, so the optimizer's many candidate lowerings of one
// predicate (and repeated queries) stop paying O(N·dim) per probe. Safe
// to skip: a nil cache leaves the store uncached.
func (s *Store) AttachCache(c *cache.LRU) {
	s.queryVecs = cache.NewLayer[[]float32](c, "embed", func(v []float32) int64 {
		return int64(len(v)) * 4
	})
	s.distMaps = cache.NewLayer[map[int]float64](c, "distance", func(m map[int]float64) int64 {
		return int64(len(m))*12 + 48
	})
}

// DistanceScans reports how many full linear distance scans ran (i.e.
// distance-map cache misses plus uncached calls).
func (s *Store) DistanceScans() int64 { return s.distScans.Load() }

// embed returns the query embedding, cached when a cache is attached.
// Cached vectors are shared: callers must not mutate them.
func (s *Store) embed(query string) []float32 {
	v, _, _ := s.queryVecs.GetOrCompute(query, func() ([]float32, error) {
		return s.embedder.Embed(query), nil
	})
	return v
}

// Embedder exposes the store's embedding model.
func (s *Store) Embedder() *embedding.Embedder { return s.embedder }

// Len returns the number of documents.
func (s *Store) Len() int { return len(s.Docs) }

// Doc returns the document with the given id.
func (s *Store) Doc(id int) (Document, bool) {
	i, ok := s.byID[id]
	if !ok {
		return Document{}, false
	}
	return s.Docs[i], true
}

// IDs returns all document ids in collection order.
func (s *Store) IDs() []int {
	out := make([]int, len(s.Docs))
	for i, d := range s.Docs {
		out[i] = d.ID
	}
	return out
}

// Vector returns the embedding of the document with the given id.
func (s *Store) Vector(id int) []float32 {
	return s.flat.Vector(id)
}

// SearchDocs returns the k nearest documents to the query text, using the
// HNSW index (the IndexScan access path).
func (s *Store) SearchDocs(query string, k int) []vector.Result {
	return s.hnsw.Search(s.embed(query), k)
}

// SearchDocsExact is the exact (linear) variant of SearchDocs.
func (s *Store) SearchDocsExact(query string, k int) []vector.Result {
	return s.flat.Search(s.embed(query), k)
}

// Distances returns cosine distances from the query text to every
// document, keyed by document id (used by cardinality estimation). The
// returned map is shared when a cache is attached: treat it as read-only.
// The cache key embeds the corpus generation — a distance map enumerates
// every document, so one computed before an ingest must never be reused
// after it. (Query EMBEDDINGS stay keyed by text alone: embedding is a
// pure function of the text and survives corpus mutations.) Generation
// zero keeps the bare-text key so static corpora — and the byte-pinned
// seed goldens, cache accounting included — are untouched.
func (s *Store) Distances(query string) map[int]float64 {
	key := query
	if g := s.generation.Load(); g != 0 {
		key = fmt.Sprintf("g%d|%s", g, query)
	}
	m, _, _ := s.distMaps.GetOrCompute(key, func() (map[int]float64, error) {
		s.distScans.Add(1)
		return s.flat.Distances(s.embed(query)), nil
	})
	return m
}

// SearchSentences returns the k nearest sentences to the query text
// (RAG-style retrieval). It returns nil when the sentence index was
// disabled.
func (s *Store) SearchSentences(query string, k int) []Sentence {
	if s.sentIndex == nil {
		return nil
	}
	res := s.sentIndex.Search(s.embed(query), k)
	out := make([]Sentence, len(res))
	for i, r := range res {
		out[i] = s.sentences[r.ID]
	}
	return out
}

// SplitSentences performs simple sentence segmentation: splits on line
// breaks and sentence-final punctuation, dropping empties.
func SplitSentences(text string) []string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		start := 0
		for i := 0; i < len(line); i++ {
			if line[i] == '.' || line[i] == '?' || line[i] == '!' {
				if s := strings.TrimSpace(line[start : i+1]); s != "" {
					out = append(out, s)
				}
				start = i + 1
			}
		}
		if s := strings.TrimSpace(line[start:]); s != "" {
			out = append(out, s)
		}
	}
	return out
}
