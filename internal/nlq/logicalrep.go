package nlq

import (
	"regexp"
	"strings"
)

// LogicalRep renders the query's logical representation: its canonical
// text with concrete values abstracted into semantic placeholders
// ([Entity], [Condition], [Attribute], [Number]), per Definition 1 of the
// paper. Operator matching compares the embedding of this string against
// the embeddings of operator logical representations.
func (q *Query) LogicalRep() string {
	if q == nil || q.Root == nil {
		return ""
	}
	c := q.Clone()
	c.Walk(func(slot **Node) {
		n := *slot
		switch n.Kind {
		case "var":
			n.Ref = "entityvar"
		case "set":
			if n.Base != "" {
				n.Base = "[Entity]"
			}
			for i := range n.Filters {
				n.Filters[i] = Filter{Text: "that [Condition]"}
			}
		case "group", "labels", "classify":
			n.Class = "[Attribute]"
		}
	})
	s := c.Render()
	// Scrub residual literals (numbers, variable markers) the structural
	// pass cannot reach.
	s = strings.ReplaceAll(s, "{entityvar}", "[Entity]")
	s = reNumberLit.ReplaceAllString(s, "[Number]")
	s = strings.ReplaceAll(s, "[Number]th percentile", "[Number]-th percentile")
	return s
}

var reNumberLit = regexp.MustCompile(`\b\d+\b`)
