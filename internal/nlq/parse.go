package nlq

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"unify/internal/nlcond"
)

// Parse interprets an analytics query (an original workload question or a
// canonical partially-reduced form) into an expression tree. It returns an
// error when the text is outside the supported grammar; the planner treats
// that as "the LLM could not ground this query" and falls back to the
// Generate operator.
func Parse(text string) (*Query, error) {
	s := normalize(text)
	if s == "" {
		return nil, fmt.Errorf("nlq: empty query")
	}
	n, err := parseExpr(s)
	if err != nil {
		return nil, err
	}
	return &Query{Root: n}, nil
}

func normalize(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.TrimRight(s, "?!. ")
	return strings.Join(strings.Fields(s), " ")
}

var leadFillers = []string{
	"what is ", "what are ", "compute ", "calculate ", "list ", "show ",
	"tell me ", "report ", "find ", "determine ", "considering only ",
}

func stripLead(s string) string {
	for changed := true; changed; {
		changed = false
		for _, p := range leadFillers {
			if strings.HasPrefix(s, p) {
				s = s[len(p):]
				changed = true
			}
		}
	}
	return s
}

var (
	reTopEntriesOf  = regexp.MustCompile(`^the top (\d+) entries of (\{v\d+\})$`)
	reTopEntriesBy  = regexp.MustCompile(`^the top (\d+) entries by (.+)$`)
	reEntryOf       = regexp.MustCompile(`^which entry of (\{v\d+\}) is the (highest|lowest|largest|smallest)$`)
	reEntryHas      = regexp.MustCompile(`^which entry has the (highest|lowest|largest|smallest) (.+)$`)
	reAmongSubset   = regexp.MustCompile(`^among ([a-z]+) (.+?), which one has the (highest|lowest|most|largest) (.+)$`)
	reAmongClass    = regexp.MustCompile(`^(?:among )?(.+?), which (?:(\d+) )?(sport|field|area|category|topic|categorie)s? (?:has|have|shows?) the (highest|lowest|most|largest) (.+)$`)
	reWhichClass    = regexp.MustCompile(`^which (sport|field|area|category|topic) (?:has|shows) the (most|highest|largest) (.+)$`)
	reWhichClassNum = regexp.MustCompile(`^which (sport|field|area|category|topic) has the largest number of (.+)$`)
	reRank          = regexp.MustCompile(`^rank the ([a-z]+?)s? by their (.+?)(?: in descending order)? and report the top (\d+)$`)
	reCount         = regexp.MustCompile(`^(?:how many|count the|count|the number of|number of) (.+)$`)
	reRatio         = regexp.MustCompile(`^the ratio of (.+)$`)
	reFraction      = regexp.MustCompile(`^what fraction of (.+?) (?:are|is) (.+)$`)
	reAvg           = regexp.MustCompile(`^the (?:average|mean) (score|number of views|views) (?:of|for|across) (.+)$`)
	reTotal         = regexp.MustCompile(`^the total (score|number of views|views) (?:of|for|across) (.+)$`)
	reMaxMin        = regexp.MustCompile(`^the (maximum|highest|largest|minimum|lowest|smallest) (score|number of views|views) (?:of|among|for) (.+)$`)
	reMedian        = regexp.MustCompile(`^the median (score|number of views|views) (?:of|for|across) (.+)$`)
	rePercentile    = regexp.MustCompile(`^the (\d+)(?:st|nd|rd|th) percentile of (views|score) (?:of|for|across) (.+)$`)
	reTopViewed     = regexp.MustCompile(`^the top (\d+) most viewed (.+)$`)
	reSortBy        = regexp.MustCompile(`^(?:sort |order )?(.+?) (?:sorted )?by (views|score|upvotes) (?:in )?(descending|ascending)(?: order)?$`)
	reTopWithMost   = regexp.MustCompile(`^the (\d+) (.+?) with the most (views|upvotes)$`)
	reTopCanonical  = regexp.MustCompile(`^the top (\d+) of (.+) by (views|score)$`)
	reWhichDoc      = regexp.MustCompile(`^which (question|article|document|page) (.+?) has the (highest|most) (score|views|number of views)$`)
	reTitleOf       = regexp.MustCompile(`^the title of (.+)$`)
	reAppearBoth    = regexp.MustCompile(`^which ([a-z]+?)s? appear both among (.+) and among (.+)$`)
	reDistinct      = regexp.MustCompile(`^the distinct ([a-z]+?)s of (.+)$`)
	reUnionOf       = regexp.MustCompile(`^the union of (.+)$`)
	reIntersectOf   = regexp.MustCompile(`^the intersection of (.+)$`)
	reComplementOf  = regexp.MustCompile(`^the elements of (.+?) not in (.+)$`)
	reGroupsOf      = regexp.MustCompile(`^the groups of (.+) by ([a-z]+)$`)
	reClassOf       = regexp.MustCompile(`^the (sport|topic|field|area|category) of (.+)$`)
	reCompareLarger = regexp.MustCompile(`^which is larger:? (.+)$`)
	reCompareMore   = regexp.MustCompile(`^are there more (.+)$`)
)

func dirOf(word string) string {
	switch word {
	case "lowest", "smallest", "minimum":
		return "asc"
	default:
		return "desc"
	}
}

func canonClassWord(w string) string {
	w = strings.TrimSuffix(strings.TrimSpace(w), "s")
	if w == "categorie" {
		return "category"
	}
	return w
}

func parseExpr(s string) (*Node, error) {
	s = stripLead(strings.TrimSpace(s))

	if _, ok := ParseVarRef(s); ok {
		return &Node{Kind: "var", Ref: strings.Trim(s, "{}")}, nil
	}

	// --- compare ---
	if m := reCompareLarger.FindStringSubmatch(s); m != nil {
		return parseCompare(m[1], " or ")
	}
	if m := reCompareMore.FindStringSubmatch(s); m != nil {
		if n, err := parseCompare(m[1], " or "); err == nil {
			return n, nil
		}
		return parseCompare(m[1], " than ")
	}

	// --- grouped argmax / top-k over labels ---
	if m := reEntryOf.FindStringSubmatch(s); m != nil {
		v, _ := parseExpr(m[1])
		return &Node{Kind: "pick", Want: "labels", K: 1, Dir: dirOf(m[2]), Over: v}, nil
	}
	if m := reEntryHas.FindStringSubmatch(s); m != nil {
		meas, err := parseMeasure(m[2])
		if err != nil {
			return nil, err
		}
		return &Node{Kind: "pick", Want: "labels", K: 1, Dir: dirOf(m[1]), Over: meas}, nil
	}
	if m := reTopEntriesOf.FindStringSubmatch(s); m != nil {
		k, _ := strconv.Atoi(m[1])
		v, _ := parseExpr(m[2])
		return &Node{Kind: "pick", Want: "labels", K: k, Dir: "desc", Over: v}, nil
	}
	if m := reTopEntriesBy.FindStringSubmatch(s); m != nil {
		k, _ := strconv.Atoi(m[1])
		meas, err := parseMeasure(m[2])
		if err != nil {
			return nil, err
		}
		return &Node{Kind: "pick", Want: "labels", K: k, Dir: "desc", Over: meas}, nil
	}
	if m := reAmongSubset.FindStringSubmatch(s); m != nil {
		class := canonClassWord(m[1])
		subsetCond, ok := nlcond.Parse(m[2])
		if ok && subsetCond.Kind == nlcond.Subset && knownClass(class) {
			meas, err := parseMeasure(m[4])
			if err != nil {
				return nil, err
			}
			g := &Node{Kind: "group", Class: class, Over: &Node{Kind: "set", Base: "questions"}}
			if !bindGroup(meas, g, &Filter{Cond: subsetCond, Text: m[2]}) {
				return nil, fmt.Errorf("nlq: subset grouping without measurable set in %q", s)
			}
			return &Node{Kind: "pick", Want: "labels", K: 1, Dir: dirOf(m[3]), Over: meas}, nil
		}
	}
	if m := reAmongClass.FindStringSubmatch(s); m != nil {
		over, errOver := parseSetExpr(m[1])
		meas, errMeas := parseMeasure(m[5])
		if errOver == nil && errMeas == nil {
			k := 1
			if m[2] != "" {
				k, _ = strconv.Atoi(m[2])
			}
			g := &Node{Kind: "group", Class: canonClassWord(m[3]), Over: over}
			if !bindGroup(meas, g, nil) {
				return nil, fmt.Errorf("nlq: grouping without measurable set in %q", s)
			}
			return &Node{Kind: "pick", Want: "labels", K: k, Dir: dirOf(m[4]), Over: meas}, nil
		}
	}
	if m := reWhichClassNum.FindStringSubmatch(s); m != nil {
		if n, err := groupCountPick(m[1], m[2], 1, "desc"); err == nil {
			return n, nil
		}
	}
	if m := reWhichClass.FindStringSubmatch(s); m != nil {
		// "which sport has the most questions with at least 50 upvotes":
		// the measure is an implicit count of a set.
		if n, err := groupCountPick(m[1], m[3], 1, dirOf(m[2])); err == nil {
			return n, nil
		}
		meas, err := parseMeasure(m[3])
		if err != nil {
			return nil, err
		}
		g := &Node{Kind: "group", Class: canonClassWord(m[1]), Over: &Node{Kind: "set", Base: "questions"}}
		if !bindGroup(meas, g, nil) {
			return nil, fmt.Errorf("nlq: grouping without measurable set in %q", s)
		}
		return &Node{Kind: "pick", Want: "labels", K: 1, Dir: dirOf(m[2]), Over: meas}, nil
	}
	if m := reRank.FindStringSubmatch(s); m != nil {
		k, _ := strconv.Atoi(m[3])
		meas, err := parseMeasure(strings.TrimPrefix(m[2], "their "))
		if err != nil {
			return nil, err
		}
		g := &Node{Kind: "group", Class: canonClassWord(m[1]), Over: &Node{Kind: "set", Base: "questions"}}
		if !bindGroup(meas, g, nil) {
			return nil, fmt.Errorf("nlq: grouping without measurable set in %q", s)
		}
		return &Node{Kind: "pick", Want: "labels", K: k, Dir: "desc", Over: meas}, nil
	}

	// --- ratio / fraction ---
	if m := reRatio.FindStringSubmatch(s); m != nil {
		if n, err := splitBinary(m[1], " to ", func(a, b *Node) *Node {
			return &Node{Kind: "ratio", A: a, B: b}
		}, parseMeasure); err == nil {
			return n, nil
		}
	}
	if m := reFraction.FindStringSubmatch(s); m != nil {
		base, err := parseSetExpr(m[1])
		if err != nil {
			return nil, err
		}
		cond, ok := nlcond.Parse(m[2])
		if !ok || base.Kind != "set" {
			return nil, fmt.Errorf("nlq: cannot parse fraction condition %q", m[2])
		}
		withCond := cloneNode(base)
		withCond.Filters = append(withCond.Filters, Filter{Cond: cond, Text: m[2]})
		return &Node{Kind: "ratio",
			A: &Node{Kind: "agg", Agg: AggCount, Over: withCond},
			B: &Node{Kind: "agg", Agg: AggCount, Over: base}}, nil
	}

	// --- set operations (canonical forms) ---
	if m := reUnionOf.FindStringSubmatch(s); m != nil {
		if n, err := splitBinary(m[1], " and ", func(a, b *Node) *Node {
			return &Node{Kind: "setop", SetOp: "union", A: a, B: b}
		}, parseExpr); err == nil {
			return n, nil
		}
	}
	if m := reIntersectOf.FindStringSubmatch(s); m != nil {
		if n, err := splitBinary(m[1], " and ", func(a, b *Node) *Node {
			return &Node{Kind: "setop", SetOp: "intersection", A: a, B: b}
		}, parseExpr); err == nil {
			return n, nil
		}
	}
	if m := reComplementOf.FindStringSubmatch(s); m != nil {
		a, errA := parseExpr(m[1])
		b, errB := parseExpr(m[2])
		if errA == nil && errB == nil {
			return &Node{Kind: "setop", SetOp: "complement", A: a, B: b}, nil
		}
	}
	if m := reAppearBoth.FindStringSubmatch(s); m != nil {
		class := canonClassWord(m[1])
		a, errA := parseSetExpr(m[2])
		b, errB := parseSetExpr(m[3])
		if errA == nil && errB == nil && knownClass(class) {
			return &Node{Kind: "setop", SetOp: "intersection",
				A: &Node{Kind: "labels", Class: class, Over: a},
				B: &Node{Kind: "labels", Class: class, Over: b}}, nil
		}
	}
	if m := reDistinct.FindStringSubmatch(s); m != nil {
		class := canonClassWord(m[1])
		over, err := parseSetExpr(m[2])
		if err == nil && knownClass(class) {
			return &Node{Kind: "labels", Class: class, Over: over}, nil
		}
	}

	// --- aggregates ---
	if m := reCount.FindStringSubmatch(s); m != nil {
		over, err := parseCountTail(m[1])
		if err != nil {
			return nil, err
		}
		return &Node{Kind: "agg", Agg: AggCount, Over: over}, nil
	}
	if m := reAvg.FindStringSubmatch(s); m != nil {
		return aggNode(AggAvg, m[1], m[2], 0)
	}
	if m := reTotal.FindStringSubmatch(s); m != nil {
		return aggNode(AggSum, m[1], m[2], 0)
	}
	if m := reMaxMin.FindStringSubmatch(s); m != nil {
		kind := AggMax
		if dirOf(m[1]) == "asc" {
			kind = AggMin
		}
		return aggNode(kind, m[2], m[3], 0)
	}
	if m := reMedian.FindStringSubmatch(s); m != nil {
		return aggNode(AggMedian, m[1], m[2], 0)
	}
	if m := rePercentile.FindStringSubmatch(s); m != nil {
		p, _ := strconv.Atoi(m[1])
		return aggNode(AggPercentile, m[2], m[3], p)
	}

	// --- document sorting, top-k and title extraction ---
	if m := reSortBy.FindStringSubmatch(s); m != nil {
		set, err := parseSetExpr(m[1])
		if err == nil && (set.Kind == "set" || set.Kind == "var") {
			by := m[2]
			if by == "upvotes" {
				by = "score"
			}
			dir := "desc"
			if m[3] == "ascending" {
				dir = "asc"
			}
			return &Node{Kind: "pick", Want: "docs", K: 0, Dir: dir, By: by, Over: set}, nil
		}
	}
	if m := reTopViewed.FindStringSubmatch(s); m != nil {
		k, _ := strconv.Atoi(m[1])
		set, err := parseSetExpr(m[2])
		if err != nil {
			return nil, err
		}
		return &Node{Kind: "pick", Want: "docs", K: k, Dir: "desc", By: "views", Over: set}, nil
	}
	if m := reTopWithMost.FindStringSubmatch(s); m != nil {
		k, _ := strconv.Atoi(m[1])
		set, err := parseSetExpr(m[2])
		if err != nil {
			return nil, err
		}
		by := "views"
		if m[3] == "upvotes" {
			by = "score"
		}
		return &Node{Kind: "pick", Want: "docs", K: k, Dir: "desc", By: by, Over: set}, nil
	}
	if m := reTopCanonical.FindStringSubmatch(s); m != nil {
		k, _ := strconv.Atoi(m[1])
		set, err := parseSetExpr(m[2])
		if err != nil {
			return nil, err
		}
		return &Node{Kind: "pick", Want: "docs", K: k, Dir: "desc", By: m[3], Over: set}, nil
	}
	if m := reWhichDoc.FindStringSubmatch(s); m != nil {
		set, err := parseSetExpr(m[1] + " " + m[2])
		if err != nil {
			return nil, err
		}
		by := "score"
		if strings.Contains(m[4], "views") {
			by = "views"
		}
		pick := &Node{Kind: "pick", Want: "docs", K: 1, Dir: "desc", By: by, Over: set}
		return &Node{Kind: "title", Over: pick}, nil
	}
	if m := reTitleOf.FindStringSubmatch(s); m != nil {
		over, err := parseExpr(m[1])
		if err != nil {
			return nil, err
		}
		return &Node{Kind: "title", Over: over}, nil
	}

	// --- grouping and classification (canonical forms) ---
	if m := reGroupsOf.FindStringSubmatch(s); m != nil {
		over, err := parseSetExpr(m[1])
		if err == nil && knownClass(canonClassWord(m[2])) {
			return &Node{Kind: "group", Class: canonClassWord(m[2]), Over: over}, nil
		}
	}
	if m := reClassOf.FindStringSubmatch(s); m != nil {
		over, err := parseExpr(m[2])
		if err == nil {
			return &Node{Kind: "classify", Class: m[1], Over: over}, nil
		}
	}

	// --- bare set fallback ---
	if set, err := parseSetExpr(s); err == nil {
		return set, nil
	}
	return nil, fmt.Errorf("nlq: cannot parse %q", s)
}

func knownClass(c string) bool {
	switch c {
	case "sport", "field", "area", "category", "topic":
		return true
	}
	return false
}

// groupCountPick builds Pick{K,dir over count(Set{over: group, filters})}
// for "which <class> has the most <set>" phrasings.
func groupCountPick(classWord, setText string, k int, dir string) (*Node, error) {
	set, err := parseSet(setText)
	if err != nil {
		return nil, err
	}
	g := &Node{Kind: "group", Class: canonClassWord(classWord), Over: &Node{Kind: "set", Base: set.Base}}
	meas := &Node{Kind: "agg", Agg: AggCount, Over: &Node{Kind: "set", Over: g, Filters: set.Filters}}
	return &Node{Kind: "pick", Want: "labels", K: k, Dir: dir, Over: meas}, nil
}

// bindGroup attaches plain-entity leaf sets of a measure tree to the group
// node g (and optionally prepends a subset filter). It reports whether at
// least one set was bound.
func bindGroup(meas *Node, g *Node, subset *Filter) bool {
	bound := false
	var visit func(n *Node)
	visit = func(n *Node) {
		if n == nil {
			return
		}
		if n.Kind == "set" && n.Over == nil && !strings.HasPrefix(n.Base, "{") {
			n.Over = g
			n.Base = ""
			if subset != nil {
				n.Filters = append([]Filter{*subset}, n.Filters...)
			}
			bound = true
			return // do not descend into the shared group node
		}
		visit(n.Over)
		visit(n.A)
		visit(n.B)
	}
	visit(meas)
	return bound
}

// parseMeasure parses a per-group measure expression: counts, ratios,
// variable references, or implicit count-of-set phrasings.
func parseMeasure(s string) (*Node, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "the ") && !strings.HasPrefix(s, "{") {
		s = "the " + s
	}
	if n, err := parseExpr(s); err == nil {
		// A bare set as a measure means its size ("has the most
		// questions related to injury").
		if n.Kind == "set" || n.Kind == "setop" {
			return &Node{Kind: "agg", Agg: AggCount, Over: n}, nil
		}
		return n, nil
	}
	return nil, fmt.Errorf("nlq: cannot parse measure %q", s)
}

// parseCompare splits "A or B"/"A than B" into a comparison of counts.
func parseCompare(s, sep string) (*Node, error) {
	return splitBinary(s, sep, func(a, b *Node) *Node {
		return &Node{Kind: "compare", A: a, B: b}
	}, countify)
}

// countify parses a comparison side: a count expression, a variable, or a
// bare set (implicitly counted).
func countify(s string) (*Node, error) {
	s = strings.TrimSpace(s)
	if _, ok := ParseVarRef(s); ok {
		return &Node{Kind: "var", Ref: strings.Trim(s, "{}")}, nil
	}
	if n, err := parseExpr(s); err == nil {
		if n.Kind == "set" || n.Kind == "setop" {
			return &Node{Kind: "agg", Agg: AggCount, Over: n}, nil
		}
		return n, nil
	}
	return nil, fmt.Errorf("nlq: cannot parse comparison side %q", s)
}

// splitBinary tries every occurrence of sep as the split point, returning
// the first split where both sides parse with the given side parser.
func splitBinary(s, sep string, build func(a, b *Node) *Node, side func(string) (*Node, error)) (*Node, error) {
	idx := 0
	for {
		rel := strings.Index(s[idx:], sep)
		if rel < 0 {
			return nil, fmt.Errorf("nlq: no valid %q split in %q", sep, s)
		}
		at := idx + rel
		a, errA := side(s[:at])
		if errA == nil {
			if b, errB := side(s[at+len(sep):]); errB == nil {
				return build(a, b), nil
			}
		}
		idx = at + len(sep)
	}
}

// parseCountTail parses the operand of a count: set expressions, unions,
// and variables.
func parseCountTail(s string) (*Node, error) {
	s = strings.TrimSpace(s)
	if _, ok := ParseVarRef(s); ok {
		return &Node{Kind: "var", Ref: strings.Trim(s, "{}")}, nil
	}
	if m := reUnionOf.FindStringSubmatch(s); m != nil {
		if n, err := splitBinary(m[1], " and ", func(a, b *Node) *Node {
			return &Node{Kind: "setop", SetOp: "union", A: a, B: b}
		}, parseExpr); err == nil {
			return n, nil
		}
	}
	if m := reIntersectOf.FindStringSubmatch(s); m != nil {
		if n, err := splitBinary(m[1], " and ", func(a, b *Node) *Node {
			return &Node{Kind: "setop", SetOp: "intersection", A: a, B: b}
		}, parseExpr); err == nil {
			return n, nil
		}
	}
	return parseSetExpr(s)
}

func aggNode(kind AggKind, fieldWord, setText string, p int) (*Node, error) {
	over, err := parseSetExpr(setText)
	if err != nil {
		return nil, err
	}
	field := "views"
	if strings.Contains(fieldWord, "score") {
		field = "score"
	}
	return &Node{Kind: "agg", Agg: kind, Field: field, P: p, Over: over}, nil
}

// parseSetExpr parses a document-set description, including the implicit
// union shorthand "questions about X or about Y" (whose right side may
// omit the base noun).
func parseSetExpr(s string) (*Node, error) {
	s = strings.TrimSpace(s)
	if _, ok := ParseVarRef(s); ok {
		return &Node{Kind: "var", Ref: strings.Trim(s, "{}")}, nil
	}
	for idx := 0; strings.Contains(s[idx:], " or "); {
		at := idx + strings.Index(s[idx:], " or ")
		idx = at + len(" or ")
		a, errA := parseSet(s[:at])
		if errA != nil {
			continue
		}
		right := strings.TrimSpace(s[at+len(" or "):])
		if b, errB := parseSet(right); errB == nil {
			return &Node{Kind: "setop", SetOp: "union", A: a, B: b}, nil
		}
		if a.Kind == "set" && a.Base != "" {
			if b, errB := parseSet(a.Base + " " + right); errB == nil {
				return &Node{Kind: "setop", SetOp: "union", A: a, B: b}, nil
			}
		}
	}
	return parseSet(s)
}

var (
	reBaseWord = regexp.MustCompile(`^(questions?|articles?|documents?|pages?|webpages?)\b`)
	reAdjRel   = regexp.MustCompile(`^([a-z][a-z-]*)-related (questions?|articles?|documents?|pages?)\b`)
	reVarBase  = regexp.MustCompile(`^(\{v\d+\})`)
	// Condition span patterns, scanned within the post-base remainder.
	reNumSpan   = regexp.MustCompile(`(?:with |that have |that received |having |have |are |showing )?(more than|over|above|at least|no fewer than|fewer than|less than|under|below|at most|exactly) (\d+) (views?|upvotes?|points?|score)`)
	reYearSpan  = regexp.MustCompile(`(?:that were |which were |were |that was )?posted (after|before|since|in) (\d{4})`)
	reRangeSpan = regexp.MustCompile(`(?:that were |which were |were |that was )?posted between (\d{4}) and (\d{4})`)
	reConSpan   = regexp.MustCompile(`(?:that are |which are |that |which |are |)(about|regarding|concerning|related to|relating to|discuss(?:es|ing)?|mention(?:s|ing)?|dealing with|cover(?:s|ing)?) ([a-z][a-z-]*(?: [a-z][a-z-]*)?)`)
	reSubSpans  = []*regexp.Regexp{
		regexp.MustCompile(`(?:that |which |)(?:involve|involves|involving|require|requires|requiring|need|needs|needing|played with|using)( a ball| teamwork)`),
		regexp.MustCompile(`(related to|relating to|about|concerning) (machine learning|money|the natural world)`),
	}
	fillerWords = map[string]bool{
		"that": true, "which": true, "are": true, "is": true, "were": true,
		"was": true, "one": true, "ones": true, "the": true, "any": true,
		"all": true, "only": true, "a": true, "an": true,
	}
)

type span struct {
	start, end int
	filter     Filter
	prio       int
}

// parseSet parses "base [conditions...]" into a set node. It fails when
// unrecognized non-filler words remain, which keeps higher-level split
// heuristics honest.
func parseSet(s string) (*Node, error) {
	s = strings.TrimSpace(s)
	for _, p := range []string{"the ", "any ", "all ", "only "} {
		s = strings.TrimPrefix(s, p)
	}
	n := &Node{Kind: "set"}
	rest := s
	switch {
	case reVarBase.MatchString(rest):
		m := reVarBase.FindStringSubmatch(rest)
		n.Base = m[1]
		rest = strings.TrimSpace(rest[len(m[1]):])
	case reAdjRel.MatchString(rest):
		m := reAdjRel.FindStringSubmatch(rest)
		concept := nlcond.NormalizeConcept(m[1])
		n.Base = canonBase(m[2])
		n.Filters = append(n.Filters, Filter{
			Cond: nlcond.Cond{Kind: nlcond.Concept, Concept: concept},
			Text: "related to " + concept,
		})
		rest = strings.TrimSpace(rest[len(m[0]):])
	case reBaseWord.MatchString(rest):
		m := reBaseWord.FindStringSubmatch(rest)
		n.Base = canonBase(m[1])
		rest = strings.TrimSpace(rest[len(m[1]):])
	default:
		return nil, fmt.Errorf("nlq: no base entity in %q", s)
	}
	if rest == "" {
		return maybeVarNode(n), nil
	}
	spans, err := scanConditions(rest)
	if err != nil {
		return nil, err
	}
	// Residue check: all uncovered words must be fillers.
	covered := make([]bool, len(rest))
	for _, sp := range spans {
		for i := sp.start; i < sp.end; i++ {
			covered[i] = true
		}
	}
	var residue strings.Builder
	for i, ch := range rest {
		if !covered[i] {
			residue.WriteRune(ch)
		}
	}
	for _, w := range strings.Fields(residue.String()) {
		if !fillerWords[w] {
			return nil, fmt.Errorf("nlq: unrecognized phrase %q in set %q", w, s)
		}
	}
	for _, sp := range spans {
		n.Filters = append(n.Filters, sp.filter)
	}
	return maybeVarNode(n), nil
}

// maybeVarNode collapses a filterless set over a variable base back to a
// var node, keeping trees canonical.
func maybeVarNode(n *Node) *Node {
	if len(n.Filters) == 0 {
		if _, ok := ParseVarRef(n.Base); ok {
			return &Node{Kind: "var", Ref: strings.Trim(n.Base, "{}")}
		}
	}
	return n
}

func canonBase(b string) string {
	b = strings.ToLower(b)
	if !strings.HasSuffix(b, "s") {
		b += "s"
	}
	if b == "webpages" {
		b = "pages"
	}
	return b
}

// scanConditions finds all condition spans in the remainder of a set
// description, resolving overlaps by priority (subset > year > numeric >
// concept) and position.
func scanConditions(rest string) ([]span, error) {
	var spans []span
	add := func(start, end int, f Filter, prio int) {
		spans = append(spans, span{start, end, f, prio})
	}
	for _, sub := range nlcond.FindSubsetSpans(rest) {
		add(sub.Start, sub.End, Filter{
			Cond: nlcond.Cond{Kind: nlcond.Subset, Concept: sub.Name},
			Text: strings.TrimSpace(rest[sub.Start:sub.End]),
		}, 0)
	}
	for _, loc := range reRangeSpan.FindAllStringSubmatchIndex(rest, -1) {
		phrase := rest[loc[0]:loc[1]]
		if c, ok := nlcond.Parse(phrase); ok {
			add(loc[0], loc[1], Filter{Cond: c, Text: strings.TrimSpace(phrase)}, 1)
		}
	}
	for _, loc := range reYearSpan.FindAllStringSubmatchIndex(rest, -1) {
		phrase := rest[loc[0]:loc[1]]
		if c, ok := nlcond.Parse(phrase); ok {
			add(loc[0], loc[1], Filter{Cond: c, Text: strings.TrimSpace(phrase)}, 1)
		}
	}
	for _, loc := range reNumSpan.FindAllStringSubmatchIndex(rest, -1) {
		phrase := rest[loc[0]:loc[1]]
		if c, ok := nlcond.Parse(phrase); ok {
			add(loc[0], loc[1], Filter{Cond: c, Text: strings.TrimSpace(phrase)}, 2)
		}
	}
	// Concept spans are scanned with manual offset control: the greedy
	// two-word capture is trimmed back at clause keywords, and scanning
	// resumes right after the trimmed capture so consecutive conditions
	// ("related to football related to injury") are all found.
	for off := 0; off < len(rest); {
		loc := reConSpan.FindStringSubmatchIndex(rest[off:])
		if loc == nil {
			break
		}
		absStart := off + loc[0]
		captStart := off + loc[4]
		capt := rest[captStart : off+loc[5]]
		trimmed, cut := trimConceptCapture(capt)
		end := captStart + cut
		if trimmed == "" || end <= absStart {
			off = captStart + 1
			continue
		}
		concept := nlcond.NormalizeConcept(trimmed)
		if concept != "" {
			add(absStart, end, Filter{
				Cond: nlcond.Cond{Kind: nlcond.Concept, Concept: concept},
				Text: "related to " + concept,
			}, 3)
		}
		off = end
	}
	// Resolve overlaps: sort by priority then position, keep
	// non-overlapping greedily, then restore positional order.
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].prio != spans[j].prio {
			return spans[i].prio < spans[j].prio
		}
		return spans[i].start < spans[j].start
	})
	var kept []span
	overlaps := func(a, b span) bool { return a.start < b.end && b.start < a.end }
	for _, sp := range spans {
		ok := true
		for _, k := range kept {
			if overlaps(sp, k) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, sp)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].start < kept[j].start })
	return kept, nil
}

var conceptStopWords = map[string]bool{
	"with": true, "that": true, "which": true, "have": true, "having": true,
	"posted": true, "or": true, "and": true, "are": true, "were": true,
	"was": true, "is": true, "related": true, "relating": true,
	"about": true, "regarding": true, "concerning": true,
	"mentioning": true, "discussing": true, "covering": true,
	"involving": true, "requiring": true, "dealing": true,
}

var genericNouns = map[string]bool{
	"questions": true, "question": true, "articles": true, "article": true,
	"pages": true, "page": true, "documents": true, "document": true,
}

// trimConceptCapture cuts a greedy concept capture at the first word that
// starts a different clause and drops trailing generic nouns ("injury
// questions" -> "injury"), returning the trimmed capture and its byte
// length within the original capture.
func trimConceptCapture(capt string) (string, int) {
	words := strings.Fields(capt)
	kept := words[:0]
	for _, w := range words {
		if conceptStopWords[w] {
			break
		}
		kept = append(kept, w)
	}
	for len(kept) > 1 && genericNouns[kept[len(kept)-1]] {
		kept = kept[:len(kept)-1]
	}
	out := strings.Join(kept, " ")
	return out, len(out)
}
