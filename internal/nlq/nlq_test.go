package nlq

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"unify/internal/lexicon"
	"unify/internal/nlcond"
)

// mustParse parses or fails the test.
func mustParse(t *testing.T, s string) *Query {
	t.Helper()
	q, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return q
}

func TestParseCount(t *testing.T) {
	q := mustParse(t, "How many questions about football have more than 500 views?")
	r := q.Root
	if r.Kind != "agg" || r.Agg != AggCount {
		t.Fatalf("root = %+v, want count agg", r)
	}
	set := r.Over
	if set.Kind != "set" || set.Base != "questions" {
		t.Fatalf("set = %+v", set)
	}
	if len(set.Filters) != 2 {
		t.Fatalf("filters = %+v, want 2", set.Filters)
	}
	if set.Filters[0].Cond.Kind != nlcond.Concept || set.Filters[0].Cond.Concept != "football" {
		t.Errorf("filter0 = %+v", set.Filters[0])
	}
	if set.Filters[1].Cond.Kind != nlcond.Numeric || set.Filters[1].Cond.Value != 500 {
		t.Errorf("filter1 = %+v", set.Filters[1])
	}
}

func TestParseCountVariants(t *testing.T) {
	variants := []string{
		"How many questions about football have more than 500 views?",
		"Count the questions about football with over 500 views.",
		"What is the number of questions regarding football that have more than 500 views?",
	}
	var want string
	for i, v := range variants {
		q := mustParse(t, v)
		got := q.Render()
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("variant %d renders %q, want %q", i, got, want)
		}
	}
}

func TestParseRunningExample(t *testing.T) {
	q := mustParse(t, "Among questions with over 500 views, which sport has the highest ratio of number of questions related to injury to number of questions related to training?")
	r := q.Root
	if r.Kind != "pick" || r.Want != "labels" || r.K != 1 {
		t.Fatalf("root = %+v", r)
	}
	if r.Over.Kind != "ratio" {
		t.Fatalf("measure = %+v, want ratio", r.Over)
	}
	a := r.Over.A
	if a.Kind != "agg" || a.Agg != AggCount {
		t.Fatalf("ratio A = %+v", a)
	}
	leaf := a.Over
	if leaf.Kind != "set" || leaf.Over == nil || leaf.Over.Kind != "group" {
		t.Fatalf("leaf set = %+v", leaf)
	}
	if leaf.Over.Class != "sport" {
		t.Errorf("group class = %q", leaf.Over.Class)
	}
	gOver := leaf.Over.Over
	if gOver.Kind != "set" || len(gOver.Filters) != 1 || gOver.Filters[0].Cond.Kind != nlcond.Numeric {
		t.Fatalf("group over = %+v", gOver)
	}
}

func TestParseSubsetGrouping(t *testing.T) {
	q := mustParse(t, "Among sports involving a ball, which one has the most questions related to injury?")
	r := q.Root
	if r.Kind != "pick" || r.K != 1 {
		t.Fatalf("root = %+v", r)
	}
	leaf := r.Over.Over
	if leaf.Kind != "set" || leaf.Over == nil || leaf.Over.Kind != "group" {
		t.Fatalf("leaf = %+v", leaf)
	}
	if len(leaf.Filters) != 2 || leaf.Filters[0].Cond.Kind != nlcond.Subset {
		t.Fatalf("filters = %+v", leaf.Filters)
	}
}

// roundTrip checks parse→render→parse→render fixpoint.
func roundTrip(t *testing.T, text string) *Query {
	t.Helper()
	q := mustParse(t, text)
	r1 := q.Render()
	q2, err := Parse(r1)
	if err != nil {
		t.Fatalf("re-Parse(%q) from %q: %v", r1, text, err)
	}
	r2 := q2.Render()
	if r1 != r2 {
		t.Fatalf("render not stable: %q -> %q (from %q)", r1, r2, text)
	}
	return q
}

func TestRoundTripTemplates(t *testing.T) {
	queries := []string{
		"How many questions about football have more than 500 views?",
		"What is the average score of questions related to injury?",
		"Among questions with over 500 views, which sport has the highest ratio of number of questions related to injury to number of questions related to training?",
		"List the top 5 most viewed questions about tennis.",
		"Are there more questions related to injury or questions related to training?",
		"What is the maximum score among questions about golf?",
		"How many questions posted after 2015 discuss training?",
		"What is the median number of views for questions about cricket?",
		"Which sport has the most questions with at least 10 upvotes?",
		"What fraction of questions about football are related to injury?",
		"How many questions about football are related to nutrition?",
		"How many questions are about contract or about criminal?",
		"Which sports appear both among questions with over 500 views and among questions related to injury?",
		"What is the total number of views across questions about rugby?",
		"What is the 90th percentile of views for questions related to training?",
		"Rank the topics by their number of injury-related questions and report the top 3.",
		"Which question about basketball has the highest score?",
		"How many questions about swimming were posted before 2015?",
		"What is the average number of views of questions about hockey that are related to equipment?",
		"Among sports involving a ball, which one has the most questions related to injury?",
	}
	for _, s := range queries {
		roundTrip(t, s)
	}
}

// TestFullReduction drives the running example through complete reduction,
// checking that each step produces a parseable canonical query and that the
// process terminates in a solved state.
func TestFullReduction(t *testing.T) {
	text := "Among questions with over 500 views, which sport has the highest ratio of number of questions related to injury to number of questions related to training?"
	q := roundTrip(t, text)
	next := 1
	var opsApplied []string
	for i := 0; i < 20 && !q.Solved(); i++ {
		apps := Applicable(q, next)
		if len(apps) == 0 {
			t.Fatalf("step %d: nothing applicable for %q", i, q.Render())
		}
		// Apply the first applicable operator in a fixed order.
		var chosen string
		for _, op := range OperatorNames {
			if _, ok := apps[op]; ok {
				chosen = op
				break
			}
		}
		red, ok := Reduce(q, chosen, next)
		if !ok {
			t.Fatalf("step %d: Reduce(%s) failed for %q", i, chosen, q.Render())
		}
		opsApplied = append(opsApplied, red.Op)
		// Reduced text must re-parse to the same tree.
		txt := red.Query.Render()
		q2, err := Parse(txt)
		if err != nil {
			t.Fatalf("step %d: reduced query %q unparseable: %v", i, txt, err)
		}
		if q2.Render() != txt {
			t.Fatalf("step %d: unstable render %q -> %q", i, txt, q2.Render())
		}
		q = red.Query
		next++
	}
	if !q.Solved() {
		t.Fatalf("did not reach solved state; stuck at %q after %v", q.Render(), opsApplied)
	}
	joined := strings.Join(opsApplied, ",")
	for _, want := range []string{"Filter", "GroupBy", "Count", "Compute"} {
		if !strings.Contains(joined, want) {
			t.Errorf("applied ops %v missing %s", opsApplied, want)
		}
	}
}

// TestReduceAllTemplates verifies every workload-template family reduces
// to completion using the oracle order.
func TestReduceAllTemplates(t *testing.T) {
	queries := []string{
		"How many questions about football have more than 500 views?",
		"What is the average score of questions related to injury?",
		"Among questions with over 500 views, which sport has the highest ratio of number of questions related to injury to number of questions related to training?",
		"List the top 5 most viewed questions about tennis.",
		"Are there more questions related to injury or questions related to training?",
		"What is the maximum score among questions about golf?",
		"How many questions posted after 2015 discuss training?",
		"What is the median number of views for questions about cricket?",
		"Which sport has the most questions with at least 10 upvotes?",
		"What fraction of questions about football are related to injury?",
		"How many questions about football are related to nutrition?",
		"How many questions are about contract or about criminal?",
		"Which sports appear both among questions with over 500 views and among questions related to injury?",
		"What is the total number of views across questions about rugby?",
		"What is the 90th percentile of views for questions related to training?",
		"Rank the topics by their number of injury-related questions and report the top 3.",
		"Which question about basketball has the highest score?",
		"How many questions about swimming were posted before 2015?",
		"What is the average number of views of questions about hockey that are related to equipment?",
		"Among sports involving a ball, which one has the most questions related to injury?",
	}
	for _, text := range queries {
		q := mustParse(t, text)
		next := 1
		for i := 0; i < 25 && !q.Solved(); i++ {
			apps := Applicable(q, next)
			var chosen string
			for _, op := range OperatorNames {
				if _, ok := apps[op]; ok {
					chosen = op
					break
				}
			}
			if chosen == "" {
				t.Fatalf("%q: stuck at %q", text, q.Render())
			}
			red, _ := Reduce(q, chosen, next)
			q = red.Query
			next++
		}
		if !q.Solved() {
			t.Errorf("%q: not fully reduced, at %q", text, q.Render())
		}
	}
}

func TestLogicalRep(t *testing.T) {
	q := mustParse(t, "How many questions about football have more than 500 views?")
	lr := q.LogicalRep()
	if strings.Contains(lr, "football") || strings.Contains(lr, "500") {
		t.Errorf("LogicalRep leaked literals: %q", lr)
	}
	if !strings.Contains(lr, "[Entity]") || !strings.Contains(lr, "[Condition]") {
		t.Errorf("LogicalRep missing placeholders: %q", lr)
	}
}

func TestSolvedAndVarRef(t *testing.T) {
	q := mustParse(t, "{v7}")
	if !q.Solved() {
		t.Fatal("bare variable should be solved")
	}
	if i, ok := ParseVarRef("{v12}"); !ok || i != 12 {
		t.Errorf("ParseVarRef = %d, %v", i, ok)
	}
	if _, ok := ParseVarRef("v12"); ok {
		t.Error("ParseVarRef should require braces")
	}
}

// TestPropertyRandomLiterals property-tests the grammar: for arbitrary
// literals drawn from the lexicon and arbitrary numeric thresholds, the
// canonical query families must parse, round-trip, and fully reduce.
func TestPropertyRandomLiterals(t *testing.T) {
	cats := lexicon.Names("sport")
	asps := lexicon.Names("topic")
	f := func(ci, ai, bi uint8, n uint16, k uint8) bool {
		cat := cats[int(ci)%len(cats)]
		a1 := asps[int(ai)%len(asps)]
		a2 := asps[int(bi)%len(asps)]
		views := int(n)%5000 + 1
		topk := int(k)%10 + 1
		queries := []string{
			fmt.Sprintf("How many questions about %s have more than %d views?", cat, views),
			fmt.Sprintf("What is the average score of questions related to %s?", a1),
			fmt.Sprintf("List the top %d most viewed questions about %s.", topk, cat),
			fmt.Sprintf("Among questions with over %d views, which sport has the highest ratio of number of questions related to %s to number of questions related to %s?", views, a1, a2),
		}
		for _, text := range queries {
			q, err := Parse(text)
			if err != nil {
				t.Logf("parse %q: %v", text, err)
				return false
			}
			r1 := q.Render()
			q2, err := Parse(r1)
			if err != nil || q2.Render() != r1 {
				t.Logf("round trip failed for %q -> %q", text, r1)
				return false
			}
			// Full reduction must terminate.
			next := 1
			for i := 0; i < 25 && !q.Solved(); i++ {
				progressed := false
				for _, op := range OperatorNames {
					if red, ok := Reduce(q, op, next); ok {
						q = red.Query
						next++
						progressed = true
						break
					}
				}
				if !progressed {
					t.Logf("stuck reducing %q at %q", text, q.Render())
					return false
				}
			}
			if !q.Solved() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReduceVariants: alternative variants reduce different filters and
// produce distinct reduced queries.
func TestReduceVariants(t *testing.T) {
	q := mustParse(t, "How many questions about football have more than 500 views?")
	r0, ok0 := ReduceVariant(q, "Filter", 1, 0)
	r1, ok1 := ReduceVariant(q, "Filter", 1, 1)
	if !ok0 || !ok1 {
		t.Fatal("variants not applicable")
	}
	if r0.Args["Condition"] == r1.Args["Condition"] {
		t.Errorf("variants reduced the same condition %q", r0.Args["Condition"])
	}
	if _, ok := ReduceVariant(q, "Filter", 1, 2); ok {
		t.Error("variant beyond the filter count accepted")
	}
	if _, ok := ReduceVariant(q, "Filter", 1, -1); ok {
		t.Error("negative variant accepted")
	}
}

func TestRangeCondition(t *testing.T) {
	q := roundTrip(t, "How many questions about football were posted between 2013 and 2017?")
	set := q.Root.Over
	found := false
	for _, f := range set.Filters {
		if f.Cond.Kind == nlcond.Range && f.Cond.Value == 2013 && f.Cond.Value2 == 2017 {
			found = true
		}
	}
	if !found {
		t.Errorf("range filter missing: %+v", set.Filters)
	}
	// Full reduction still terminates.
	next := 1
	for i := 0; i < 10 && !q.Solved(); i++ {
		progressed := false
		for _, op := range OperatorNames {
			if red, ok := Reduce(q, op, next); ok {
				q = red.Query
				next++
				progressed = true
				break
			}
		}
		if !progressed {
			t.Fatalf("stuck at %q", q.Render())
		}
	}
	if !q.Solved() {
		t.Errorf("range query not fully reduced: %q", q.Render())
	}
}

func TestFullSortQuery(t *testing.T) {
	q := roundTrip(t, "Sort the questions about golf by views in descending order.")
	r := q.Root
	if r.Kind != "pick" || r.Want != "docs" || r.K != 0 || r.By != "views" || r.Dir != "desc" {
		t.Fatalf("root = %+v", r)
	}
	// The filter reduces first, then the sort maps to OrderBy.
	red, ok := Reduce(q, "Filter", 1)
	if !ok {
		t.Fatal("filter not reducible")
	}
	red2, ok := Reduce(red.Query, "OrderBy", 2)
	if !ok {
		t.Fatalf("OrderBy not reducible at %q", red.Query.Render())
	}
	if !red2.Query.Solved() {
		t.Errorf("not solved after sort: %q", red2.Query.Render())
	}
	// Ascending variant.
	q2 := roundTrip(t, "Sort the questions about golf by score ascending.")
	if q2.Root.Dir != "asc" || q2.Root.By != "score" {
		t.Errorf("ascending sort = %+v", q2.Root)
	}
}
