package nlq

import (
	"fmt"
	"strconv"
	"strings"
)

// Reduction describes one successful query-reduction step: applying an
// operator to a matched query segment, replacing it with a new
// intermediate variable (the paper's §V-B reduction process).
type Reduction struct {
	Op      string            // operator name ("Filter", "GroupBy", ...)
	Query   *Query            // the reduced query
	VarName string            // new variable, e.g. "v3"
	VarDesc string            // natural-language description of the variable
	Args    map[string]string // placeholder bindings (Entity, Condition, ...)
	Inputs  []string          // consumed variables ("{v1}") or "dataset"
}

// OperatorNames lists the operator vocabulary shared between nlq reduction
// and the planning layers.
var OperatorNames = []string{
	"Scan", "Filter", "Compare", "GroupBy", "Count", "Sum", "Max", "Min",
	"Average", "Median", "Percentile", "OrderBy", "Classify", "Extract",
	"TopK", "Join", "Union", "Intersection", "Complementary", "Compute",
	"Generate",
}

// inputOf converts a base/operand description into a dependency token.
func inputOf(desc string) string {
	if _, ok := ParseVarRef(desc); ok {
		return desc
	}
	return "dataset"
}

// aggOpName maps an aggregate kind to its operator name.
func aggOpName(k AggKind) string {
	switch k {
	case AggCount:
		return "Count"
	case AggSum:
		return "Sum"
	case AggAvg:
		return "Average"
	case AggMax:
		return "Max"
	case AggMin:
		return "Min"
	case AggMedian:
		return "Median"
	case AggPercentile:
		return "Percentile"
	default:
		return "Compute"
	}
}

// setOpName maps a set operation to its operator name.
func setOpName(k string) string {
	switch k {
	case "union":
		return "Union"
	case "intersection":
		return "Intersection"
	default:
		return "Complementary"
	}
}

// pickOpName classifies a pick node as Max/Min/TopK/OrderBy.
func pickOpName(n *Node) string {
	if n.Want == "docs" {
		if n.K == 0 {
			return "OrderBy"
		}
		return "TopK"
	}
	if n.K == 1 {
		if n.Dir == "asc" {
			return "Min"
		}
		return "Max"
	}
	if n.K == 0 {
		return "OrderBy"
	}
	return "TopK"
}

// Applicable returns, for each operator that could reduce the query right
// now, whether applying it would fully solve the query ("fully") or leave
// more work ("partially"). Operators not present map to nothing.
func Applicable(q *Query, nextVar int) map[string]string {
	out := make(map[string]string)
	for _, op := range OperatorNames {
		if op == "Generate" || op == "Join" {
			continue
		}
		red, ok := Reduce(q, op, nextVar)
		if !ok {
			continue
		}
		if red.Query.Solved() {
			out[op] = "fully"
		} else {
			out[op] = "partially"
		}
	}
	return out
}

// Mentions reports whether the operator's kind of work appears anywhere in
// the query tree, even if not yet reducible (used for the LLM rerank's
// "partially solving" judgment on blocked operators).
func Mentions(q *Query, op string) bool {
	if q == nil || q.Root == nil {
		return false
	}
	found := false
	q.Clone().Walk(func(slot **Node) {
		n := *slot
		switch n.Kind {
		case "set":
			if len(n.Filters) > 0 && (op == "Filter" || op == "Scan") {
				found = true
			}
		case "group":
			if op == "GroupBy" {
				found = true
			}
		case "agg":
			if aggOpName(n.Agg) == op {
				found = true
			}
		case "ratio":
			if op == "Compute" {
				found = true
			}
		case "compare":
			if op == "Compare" {
				found = true
			}
		case "setop":
			if setOpName(n.SetOp) == op {
				found = true
			}
		case "labels", "title":
			if op == "Extract" {
				found = true
			}
		case "classify":
			if op == "Classify" {
				found = true
			}
		case "pick":
			if pickOpName(n) == op {
				found = true
			}
		}
	})
	return found
}

// Reduce attempts to reduce the query by one application of the named
// operator, returning the reduction and whether the operator was
// applicable. The input query is not modified.
func Reduce(q *Query, op string, nextVar int) (Reduction, bool) {
	return ReduceVariant(q, op, nextVar, 0)
}

// ReduceVariant is Reduce with an explicit choice among the equally
// applicable matched segments (variant 0 is the first pending filter,
// variant 1 the second, ...). Higher variants than available segments
// fail, letting a planner enumerate alternative reduction orders — the
// source of candidate-plan diversity.
func ReduceVariant(q *Query, op string, nextVar, variant int) (Reduction, bool) {
	if q == nil || q.Root == nil || q.Solved() || variant < 0 {
		return Reduction{}, false
	}
	c := q.Clone()
	varName := fmt.Sprintf("v%d", nextVar)
	varTok := VarRef(nextVar)

	var red *Reduction
	done := func(r Reduction) {
		r.Query = c
		r.VarName = varName
		red = &r
	}

	c.Walk(func(slot **Node) {
		if red != nil {
			return
		}
		n := *slot
		switch {
		case (op == "Filter" || op == "Scan") && n.Kind == "set" && n.Over == nil && len(n.Filters) > variant:
			// Scan only applies to the raw dataset (access path); Filter
			// applies anywhere.
			if op == "Scan" {
				if _, isVar := ParseVarRef(n.Base); isVar {
					return
				}
			}
			f := n.Filters[variant]
			oldBase := n.Base
			desc := oldBase + " " + condSurface(f)
			key := renderNode(n)
			// Structurally identical sets denote the same collection
			// (parse may duplicate shared subtrees); reduce them all to
			// the same variable so the plan shares one operator.
			c.Walk(func(s2 **Node) {
				m := *s2
				if m.Kind == "set" && m.Over == nil && len(m.Filters) > variant && renderNode(m) == key {
					kept := append([]Filter(nil), m.Filters[:variant]...)
					kept = append(kept, m.Filters[variant+1:]...)
					m.Filters = kept
					m.Base = varTok
					if len(m.Filters) == 0 {
						*s2 = &Node{Kind: "var", Ref: strings.Trim(varTok, "{}")}
					}
				}
			})
			done(Reduction{
				Op:     op,
				Args:   map[string]string{"Entity": oldBase, "Condition": condSurface(f)},
				Inputs: []string{inputOf(oldBase)},
			})
			red.VarDesc = desc

		case op == "GroupBy" && n.Kind == "group" && n.Over.IsBareSet():
			over := renderNode(n.Over)
			key := renderNode(n)
			desc := "the groups of " + over + " by " + n.Class
			class := n.Class
			// Replace every structurally identical group node so that
			// measure branches share one grouping (DAG sharing).
			c.Walk(func(s2 **Node) {
				m := *s2
				if m.Kind == "group" && renderNode(m) == key {
					*s2 = &Node{Kind: "var", Ref: strings.Trim(varTok, "{}")}
				}
				if m.Kind == "set" && m.Over != nil && m.Over.IsVar() {
					// Sets anchored on the reduced group become sets over
					// the groups variable.
					m.Base = "{" + m.Over.Ref + "}"
					m.Over = nil
					if len(m.Filters) == 0 {
						*s2 = &Node{Kind: "var", Ref: m.Base[1 : len(m.Base)-1]}
					}
				}
			})
			done(Reduction{
				Op:     "GroupBy",
				Args:   map[string]string{"Entity": over, "Attribute": class},
				Inputs: []string{inputOf(over)},
			})
			red.VarDesc = desc

		case op != "Scan" && op != "Filter" && n.Kind == "agg" && aggOpName(n.Agg) == op && n.Over.IsBareSet():
			operand := renderNode(n.Over)
			desc := renderAgg(n)
			key := renderNode(n)
			args := map[string]string{"Entity": operand}
			if n.Field != "" && n.Agg != AggCount {
				args["Field"] = n.Field
			}
			if n.Agg == AggPercentile {
				args["Number"] = strconv.Itoa(n.P)
			}
			c.Walk(func(s2 **Node) {
				m := *s2
				if m.Kind == "agg" && renderNode(m) == key {
					*s2 = &Node{Kind: "var", Ref: strings.Trim(varTok, "{}")}
				}
			})
			done(Reduction{Op: op, Args: args, Inputs: []string{inputOf(operand)}})
			red.VarDesc = desc

		case op == "Compute" && n.Kind == "ratio" && n.A.IsVar() && n.B.IsVar():
			a, b := renderNode(n.A), renderNode(n.B)
			*slot = &Node{Kind: "var", Ref: strings.Trim(varTok, "{}")}
			done(Reduction{
				Op:     "Compute",
				Args:   map[string]string{"Entity": a, "Entity2": b, "Expression": a + " / " + b},
				Inputs: []string{a, b},
			})
			red.VarDesc = "the ratio of " + a + " to " + b

		case op == "Compare" && n.Kind == "compare" && n.A.IsVar() && n.B.IsVar():
			a, b := renderNode(n.A), renderNode(n.B)
			*slot = &Node{Kind: "var", Ref: strings.Trim(varTok, "{}")}
			done(Reduction{
				Op:     "Compare",
				Args:   map[string]string{"Entity": a, "Entity2": b, "Condition": "larger"},
				Inputs: []string{a, b},
			})
			red.VarDesc = "the larger of " + a + " and " + b

		case n.Kind == "setop" && setOpName(n.SetOp) == op && n.A.IsVar() && n.B.IsVar():
			a, b := renderNode(n.A), renderNode(n.B)
			*slot = &Node{Kind: "var", Ref: strings.Trim(varTok, "{}")}
			done(Reduction{
				Op:     op,
				Args:   map[string]string{"Entity": a, "Entity2": b},
				Inputs: []string{a, b},
			})
			red.VarDesc = "the " + n.SetOp + " of " + a + " and " + b

		case op == "Extract" && n.Kind == "labels" && n.Over.IsBareSet():
			operand := renderNode(n.Over)
			desc := renderNode(n)
			class := n.Class
			*slot = &Node{Kind: "var", Ref: strings.Trim(varTok, "{}")}
			done(Reduction{
				Op:     "Extract",
				Args:   map[string]string{"Entity": "the distinct " + class + "s", "Entity2": operand, "Attribute": class},
				Inputs: []string{inputOf(operand)},
			})
			red.VarDesc = desc

		case op == "Extract" && n.Kind == "title" && n.Over.IsVar():
			operand := renderNode(n.Over)
			*slot = &Node{Kind: "var", Ref: strings.Trim(varTok, "{}")}
			done(Reduction{
				Op:     "Extract",
				Args:   map[string]string{"Entity": "the title", "Entity2": operand, "Attribute": "title"},
				Inputs: []string{operand},
			})
			red.VarDesc = "the title of " + operand

		case op == "Classify" && n.Kind == "classify" && n.Over.IsVar():
			operand := renderNode(n.Over)
			class := n.Class
			*slot = &Node{Kind: "var", Ref: strings.Trim(varTok, "{}")}
			done(Reduction{
				Op:     "Classify",
				Args:   map[string]string{"Entity": operand, "Attribute": class},
				Inputs: []string{operand},
			})
			red.VarDesc = "the " + class + " of " + operand

		case n.Kind == "pick" && pickOpName(n) == op && reduciblePick(n):
			operand := renderNode(n.Over)
			desc := renderNode(n)
			args := map[string]string{"Entity": operand, "Number": strconv.Itoa(n.K)}
			if n.By != "" {
				args["Field"] = n.By
			}
			if n.Dir != "" {
				args["Condition"] = n.Dir + "ending"
			}
			inputs := []string{inputOf(operand)}
			*slot = &Node{Kind: "var", Ref: strings.Trim(varTok, "{}")}
			done(Reduction{Op: op, Args: args, Inputs: inputs})
			red.VarDesc = desc
		}
	})

	if red == nil {
		return Reduction{}, false
	}
	return *red, true
}

// reduciblePick reports whether a pick node's operand is ready: a variable
// (grouped measures) or a bare document set (top-k by field).
func reduciblePick(n *Node) bool {
	if n.Want == "docs" {
		return n.Over.IsBareSet()
	}
	return n.Over.IsVar()
}
