// Package nlq implements the natural-language analytics query model used
// by the simulated LLM backend: parsing query text into a small expression
// tree, rendering trees back to canonical text, and reducing a tree by one
// operation (the primitive behind Unify's iterative query reduction).
//
// The planner itself never imports this package: it only exchanges text
// with an llm.Client, exactly as the paper's planner exchanges prompts
// with Llama. nlq is the "comprehension" inside the simulated model. The
// grammar covers the query families of the paper's workload (selection,
// projection, grouping, aggregation, ratios, set operations, top-k,
// comparisons) plus intermediate-variable references written {v1}, {v2}, …
// that appear in partially reduced queries.
package nlq

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"unify/internal/nlcond"
)

// AggKind enumerates aggregate operations.
type AggKind string

// Aggregate kinds. These names are also used as operator names by the
// planning layers.
const (
	AggCount      AggKind = "count"
	AggSum        AggKind = "sum"
	AggAvg        AggKind = "average"
	AggMax        AggKind = "max"
	AggMin        AggKind = "min"
	AggMedian     AggKind = "median"
	AggPercentile AggKind = "percentile"
)

// Node is an expression-tree node. Exactly one pointer field group is
// populated, discriminated by Kind.
type Node struct {
	Kind string // "set", "group", "agg", "ratio", "compare", "setop", "pick", "title", "var", "classify"

	// set: a collection of documents (or of groups when applied to a
	// grouped variable): Base entity plus pending filter conditions.
	Base    string   // "questions", "articles", or a variable ref "{v3}"
	Filters []Filter // pending conditions, in surface order

	// group: partition Over by a concept class.
	Over  *Node
	Class string // surface class word: "sport", "field", "area", "category", "topic"

	// agg: aggregate Over (set/group/var).
	Agg   AggKind
	Field string // "views" or "score"; empty for count
	P     int    // percentile rank

	// ratio / compare / setop: binary nodes.
	A, B  *Node
	SetOp string // "union", "intersection", "complement" for setop

	// pick: order/limit over a set or a per-group aggregate vector.
	K    int    // top-k; 1 for argmax
	Dir  string // "desc" or "asc"
	By   string // field for document picks ("views", "score")
	Want string // "labels" (group labels) or "docs"

	// title: extract the title of the (single) document in Over.
	// classify: classify the document in Over by Class.

	// var: reference to an intermediate variable.
	Ref string // "v3"
}

// Filter is one pending condition on a set.
type Filter struct {
	Cond nlcond.Cond
	Text string // surface text, e.g. "with more than 500 views"
}

// Query is a parsed analytics query.
type Query struct {
	Root *Node
}

// Clone deep-copies a query tree.
func (q *Query) Clone() *Query {
	if q == nil || q.Root == nil {
		return &Query{}
	}
	return &Query{Root: cloneNode(q.Root)}
}

func cloneNode(n *Node) *Node {
	if n == nil {
		return nil
	}
	c := *n
	c.Filters = append([]Filter(nil), n.Filters...)
	c.Over = cloneNode(n.Over)
	c.A = cloneNode(n.A)
	c.B = cloneNode(n.B)
	return &c
}

// IsVar reports whether the node is a bare variable reference.
func (n *Node) IsVar() bool { return n != nil && n.Kind == "var" }

// IsBareSet reports whether the node is a set with no pending filters.
func (n *Node) IsBareSet() bool {
	return n != nil && (n.Kind == "var" || (n.Kind == "set" && len(n.Filters) == 0))
}

// VarRef formats a variable reference token.
func VarRef(i int) string { return fmt.Sprintf("{v%d}", i) }

var reVarTok = regexp.MustCompile(`^\{v(\d+)\}$`)

// ParseVarRef extracts the index from a variable token, if any.
func ParseVarRef(s string) (int, bool) {
	m := reVarTok.FindStringSubmatch(strings.TrimSpace(s))
	if m == nil {
		return 0, false
	}
	i, err := strconv.Atoi(m[1])
	if err != nil {
		return 0, false
	}
	return i, true
}

// Solved reports whether the query is fully reduced: a bare variable
// reference (the paper's "minimal semantic unit").
func (q *Query) Solved() bool {
	return q != nil && q.Root != nil && q.Root.IsVar()
}

// walk visits every node in the tree, depth-first, children before the
// node itself (bottom-up), calling fn with a pointer to the *Node slot so
// callers can replace subtrees.
func walk(slot **Node, fn func(slot **Node)) {
	n := *slot
	if n == nil {
		return
	}
	if n.Over != nil {
		walk(&n.Over, fn)
	}
	if n.A != nil {
		walk(&n.A, fn)
	}
	if n.B != nil {
		walk(&n.B, fn)
	}
	fn(slot)
}

// Walk applies fn to every node slot bottom-up, allowing replacement.
func (q *Query) Walk(fn func(slot **Node)) {
	if q.Root != nil {
		walk(&q.Root, fn)
	}
}
