package nlq

import (
	"fmt"
	"strings"

	"unify/internal/lexicon"
	"unify/internal/nlcond"
)

// CondText renders a condition in canonical surface form, suitable for
// inclusion in a set description ("with more than 500 views").
func CondText(c nlcond.Cond) string {
	switch c.Kind {
	case nlcond.Numeric:
		word := map[string]string{">": "more than", ">=": "at least", "<": "fewer than", "<=": "at most", "==": "exactly"}[c.Op]
		noun := "views"
		if c.Field == "score" {
			noun = "upvotes"
		}
		return fmt.Sprintf("with %s %d %s", word, int(c.Value), noun)
	case nlcond.Year:
		word := map[string]string{">": "after", ">=": "since", "<": "before", "==": "in"}[c.Op]
		return fmt.Sprintf("posted %s %d", word, int(c.Value))
	case nlcond.Range:
		return fmt.Sprintf("posted between %d and %d", int(c.Value), int(c.Value2))
	case nlcond.Concept:
		return "related to " + c.Concept
	case nlcond.Subset:
		if sub, ok := lexicon.LookupSubset(c.Concept); ok {
			return sub.Phrase
		}
		return "in subset " + c.Concept
	default:
		return "unparseable condition"
	}
}

// ordinal formats 1 -> "1st", 90 -> "90th" etc.
func ordinal(n int) string {
	switch {
	case n%100 >= 11 && n%100 <= 13:
		return fmt.Sprintf("%dth", n)
	case n%10 == 1:
		return fmt.Sprintf("%dst", n)
	case n%10 == 2:
		return fmt.Sprintf("%dnd", n)
	case n%10 == 3:
		return fmt.Sprintf("%drd", n)
	default:
		return fmt.Sprintf("%dth", n)
	}
}

func fieldPhrase(field string) string {
	if field == "score" {
		return "score"
	}
	return "number of views"
}

// Render converts a query tree back to canonical natural-language text.
// Parse(Render(q)) reproduces q for every tree reachable by parsing and
// reduction (a property exercised by the test suite).
func (q *Query) Render() string {
	if q == nil || q.Root == nil {
		return ""
	}
	return renderNode(q.Root)
}

func renderNode(n *Node) string {
	switch n.Kind {
	case "var":
		return "{" + n.Ref + "}"
	case "set":
		return renderSet(n)
	case "group":
		return fmt.Sprintf("the groups of %s by %s", renderNode(n.Over), n.Class)
	case "agg":
		return renderAgg(n)
	case "ratio":
		return fmt.Sprintf("the ratio of %s to %s", renderNode(n.A), renderNode(n.B))
	case "compare":
		return fmt.Sprintf("which is larger: %s or %s", renderNode(n.A), renderNode(n.B))
	case "setop":
		switch n.SetOp {
		case "union":
			return fmt.Sprintf("the union of %s and %s", renderNode(n.A), renderNode(n.B))
		case "intersection":
			return fmt.Sprintf("the intersection of %s and %s", renderNode(n.A), renderNode(n.B))
		default:
			return fmt.Sprintf("the elements of %s not in %s", renderNode(n.A), renderNode(n.B))
		}
	case "labels":
		return fmt.Sprintf("the distinct %ss of %s", n.Class, renderNode(n.Over))
	case "title":
		return "the title of " + renderNode(n.Over)
	case "classify":
		return fmt.Sprintf("the %s of %s", n.Class, renderNode(n.Over))
	case "pick":
		return renderPick(n)
	default:
		return "unrenderable"
	}
}

// renderSet renders a document-set (or group-collection) description.
func renderSet(n *Node) string {
	var base string
	switch {
	case n.Over != nil:
		// Filters over an unreduced group: the enclosing pick renders the
		// grouping context, so the set renders with a generic base.
		base = "questions"
	case n.Base != "":
		base = n.Base
	default:
		base = "questions"
	}
	parts := []string{base}
	for _, f := range n.Filters {
		parts = append(parts, condSurface(f))
	}
	return strings.Join(parts, " ")
}

// condSurface renders a filter canonically from its parsed condition, so
// paraphrase variants of the same query render identically. The raw
// surface text is kept on the Filter only for diagnostics.
func condSurface(f Filter) string {
	if f.Cond.Kind == nlcond.Invalid && f.Text != "" {
		return f.Text
	}
	return CondText(f.Cond)
}

func renderAgg(n *Node) string {
	operand := renderNode(n.Over)
	switch n.Agg {
	case AggCount:
		return "the number of " + operand
	case AggAvg:
		return fmt.Sprintf("the average %s of %s", fieldPhrase(n.Field), operand)
	case AggSum:
		if n.Field == "score" {
			return "the total score of " + operand
		}
		return "the total number of views of " + operand
	case AggMax:
		return fmt.Sprintf("the maximum %s of %s", fieldPhrase(n.Field), operand)
	case AggMin:
		return fmt.Sprintf("the minimum %s of %s", fieldPhrase(n.Field), operand)
	case AggMedian:
		return fmt.Sprintf("the median %s of %s", fieldPhrase(n.Field), operand)
	case AggPercentile:
		noun := "views"
		if n.Field == "score" {
			noun = "score"
		}
		return fmt.Sprintf("the %s percentile of %s of %s", ordinal(n.P), noun, operand)
	default:
		return "the aggregate of " + operand
	}
}

// findGroup locates the unreduced group node anchoring a measure
// expression, plus the subset filter (if any) restricting its labels.
func findGroup(n *Node) (*Node, *nlcond.Cond) {
	var g *Node
	var subset *nlcond.Cond
	var visit func(m *Node)
	visit = func(m *Node) {
		if m == nil || g != nil && subset != nil {
			return
		}
		if m.Kind == "group" && g == nil {
			g = m
		}
		if m.Kind == "set" && m.Over != nil {
			for i := range m.Filters {
				if m.Filters[i].Cond.Kind == nlcond.Subset && subset == nil {
					subset = &m.Filters[i].Cond
				}
			}
		}
		visit(m.Over)
		visit(m.A)
		visit(m.B)
	}
	visit(n)
	return g, subset
}

// measureWithoutSubset renders a measure, omitting subset filters (they
// are rendered in the "among <class>es <phrase>" preamble instead).
func measureWithoutSubset(n *Node) string {
	c := cloneNode(n)
	var strip func(m *Node)
	strip = func(m *Node) {
		if m == nil {
			return
		}
		if m.Kind == "set" {
			kept := m.Filters[:0]
			for _, f := range m.Filters {
				if f.Cond.Kind != nlcond.Subset {
					kept = append(kept, f)
				}
			}
			m.Filters = kept
		}
		strip(m.Over)
		strip(m.A)
		strip(m.B)
	}
	strip(c)
	return renderNode(c)
}

func classPlural(class string) string {
	switch class {
	case "category":
		return "categories"
	default:
		return class + "s"
	}
}

func renderPick(n *Node) string {
	dirWord := "highest"
	if n.Dir == "asc" {
		dirWord = "lowest"
	}
	// Document picks: full sorts and top-k by a numeric field.
	if n.Want == "docs" {
		if n.K == 0 {
			dir := "descending"
			if n.Dir == "asc" {
				dir = "ascending"
			}
			return fmt.Sprintf("%s sorted by %s %s", renderNode(n.Over), n.By, dir)
		}
		return fmt.Sprintf("the top %d of %s by %s", n.K, renderNode(n.Over), n.By)
	}
	// Label picks over a reduced vector variable.
	if n.Over.IsVar() {
		if n.K == 1 {
			return fmt.Sprintf("which entry of %s is the %s", renderNode(n.Over), dirWord)
		}
		return fmt.Sprintf("the top %d entries of %s", n.K, renderNode(n.Over))
	}
	// Label picks anchored on a grouping. Measures embed without their
	// leading article ("has the highest ratio of ...").
	g, subset := findGroup(n.Over)
	switch {
	case g != nil && subset != nil:
		return fmt.Sprintf("among %s %s, which one has the %s %s",
			classPlural(g.Class), CondText(*subset), dirWord,
			strings.TrimPrefix(measureWithoutSubset(n.Over), "the "))
	case g != nil && n.K == 1:
		return fmt.Sprintf("among %s, which %s has the %s %s",
			renderNode(g.Over), g.Class, dirWord,
			strings.TrimPrefix(renderNode(n.Over), "the "))
	case g != nil:
		return fmt.Sprintf("among %s, which %d %s have the %s %s",
			renderNode(g.Over), n.K, classPlural(g.Class), dirWord,
			strings.TrimPrefix(renderNode(n.Over), "the "))
	case n.K == 1:
		// Grouping already reduced; measure still has live operations.
		return fmt.Sprintf("which entry has the %s %s", dirWord,
			strings.TrimPrefix(renderNode(n.Over), "the "))
	default:
		return fmt.Sprintf("the top %d entries by %s", n.K,
			strings.TrimPrefix(renderNode(n.Over), "the "))
	}
}
