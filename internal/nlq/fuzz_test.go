package nlq

import (
	"testing"
	"unicode/utf8"
)

// FuzzParse hammers the natural-language query parser with arbitrary
// input: it must never panic, and a successfully parsed query must
// survive the downstream operations the planner performs on it (clone,
// walk, render, logical representation).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"How many questions about football have more than 500 views?",
		"Among questions with over 500 views, which sport has the highest ratio of number of questions related to injury to number of questions related to training?",
		"Among sports involving a ball, which one has the most questions related to injury?",
		"What is the average score of questions related to training?",
		"List the top 5 questions about swimming by views",
		"questions about ((nested)) parens?",
		"",
		"   ",
		"???",
		"How many\nquestions\tabout golf",
		"Which sport has the most questions, and the fewest answers, and the best score?",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		if !utf8.ValidString(text) {
			t.Skip()
		}
		q, err := Parse(text)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatal("nil query with nil error")
		}
		// Planner operations over the parsed tree must not panic.
		c := q.Clone()
		c.Walk(func(slot **Node) {})
		_ = c.Render()
		_ = c.LogicalRep()
		_ = c.Solved()
	})
}
