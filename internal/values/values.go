// Package values defines the runtime value system flowing between plan
// operators: document lists, scalars, label lists, grouped documents, and
// labeled numeric vectors (per-group aggregates).
package values

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates Value.
type Kind int

// Value kinds.
const (
	Invalid Kind = iota
	Docs         // a list of document ids
	Num          // a scalar
	Str          // a string (label, title, "first"/"second")
	Labels       // a list of label strings
	Groups       // documents partitioned by label
	Vec          // per-label numeric values (ordered)
)

func (k Kind) String() string {
	switch k {
	case Docs:
		return "docs"
	case Num:
		return "num"
	case Str:
		return "str"
	case Labels:
		return "labels"
	case Groups:
		return "groups"
	case Vec:
		return "vec"
	default:
		return "invalid"
	}
}

// Group is one labeled partition of documents.
type Group struct {
	Label  string
	DocIDs []int
}

// LabeledNum is one entry of a per-label numeric vector.
type LabeledNum struct {
	Label string
	Num   float64
}

// Value is the tagged union exchanged between operators.
type Value struct {
	Kind     Kind
	DocIDs   []int
	NumVal   float64
	StrVal   string
	LabelVal []string
	GroupVal []Group
	VecVal   []LabeledNum
}

// NewDocs builds a Docs value.
func NewDocs(ids []int) Value { return Value{Kind: Docs, DocIDs: ids} }

// NewNum builds a Num value.
func NewNum(v float64) Value { return Value{Kind: Num, NumVal: v} }

// NewStr builds a Str value.
func NewStr(s string) Value { return Value{Kind: Str, StrVal: s} }

// NewLabels builds a Labels value.
func NewLabels(ls []string) Value { return Value{Kind: Labels, LabelVal: ls} }

// NewGroups builds a Groups value with deterministic label order.
func NewGroups(gs []Group) Value {
	sort.Slice(gs, func(i, j int) bool { return gs[i].Label < gs[j].Label })
	return Value{Kind: Groups, GroupVal: gs}
}

// NewVec builds a Vec value with deterministic label order.
func NewVec(v []LabeledNum) Value {
	sort.Slice(v, func(i, j int) bool { return v[i].Label < v[j].Label })
	return Value{Kind: Vec, VecVal: v}
}

// Len returns the cardinality of the value: number of documents, groups,
// labels or vector entries; 1 for scalars.
func (v Value) Len() int {
	switch v.Kind {
	case Docs:
		return len(v.DocIDs)
	case Groups:
		return len(v.GroupVal)
	case Labels:
		return len(v.LabelVal)
	case Vec:
		return len(v.VecVal)
	case Num, Str:
		return 1
	default:
		return 0
	}
}

// TotalDocs returns the number of documents the value spans (documents in
// all groups for Groups).
func (v Value) TotalDocs() int {
	switch v.Kind {
	case Docs:
		return len(v.DocIDs)
	case Groups:
		n := 0
		for _, g := range v.GroupVal {
			n += len(g.DocIDs)
		}
		return n
	default:
		return 0
	}
}

// String renders the value as an answer string; document lists render as
// id lists (use a formatter with store access for titles).
func (v Value) String() string {
	switch v.Kind {
	case Num:
		return strconv.FormatFloat(v.NumVal, 'f', -1, 64)
	case Str:
		return v.StrVal
	case Labels:
		ls := append([]string(nil), v.LabelVal...)
		sort.Strings(ls)
		return strings.Join(ls, ", ")
	case Docs:
		parts := make([]string, len(v.DocIDs))
		for i, id := range v.DocIDs {
			parts[i] = fmt.Sprintf("doc:%d", id)
		}
		return strings.Join(parts, ", ")
	case Groups:
		parts := make([]string, len(v.GroupVal))
		for i, g := range v.GroupVal {
			parts[i] = fmt.Sprintf("%s(%d)", g.Label, len(g.DocIDs))
		}
		return strings.Join(parts, ", ")
	case Vec:
		parts := make([]string, len(v.VecVal))
		for i, e := range v.VecVal {
			parts[i] = fmt.Sprintf("%s=%g", e.Label, e.Num)
		}
		return strings.Join(parts, ", ")
	default:
		return "<invalid>"
	}
}
