package values

import (
	"strings"
	"testing"
)

func TestConstructorsAndLen(t *testing.T) {
	if v := NewDocs([]int{1, 2, 3}); v.Len() != 3 || v.TotalDocs() != 3 {
		t.Errorf("docs: %+v", v)
	}
	if v := NewNum(4.5); v.Len() != 1 || v.NumVal != 4.5 {
		t.Errorf("num: %+v", v)
	}
	if v := NewStr("x"); v.Len() != 1 {
		t.Errorf("str: %+v", v)
	}
	if v := NewLabels([]string{"a", "b"}); v.Len() != 2 {
		t.Errorf("labels: %+v", v)
	}
	g := NewGroups([]Group{{Label: "b", DocIDs: []int{1}}, {Label: "a", DocIDs: []int{2, 3}}})
	if g.Len() != 2 || g.TotalDocs() != 3 {
		t.Errorf("groups: %+v", g)
	}
	if g.GroupVal[0].Label != "a" {
		t.Error("groups not label-sorted")
	}
	vec := NewVec([]LabeledNum{{"z", 1}, {"a", 2}})
	if vec.VecVal[0].Label != "a" {
		t.Error("vec not label-sorted")
	}
}

func TestString(t *testing.T) {
	if s := NewNum(3.5).String(); s != "3.5" {
		t.Errorf("num string = %q", s)
	}
	if s := NewLabels([]string{"b", "a"}).String(); s != "a, b" {
		t.Errorf("labels string = %q", s)
	}
	if s := NewStr("first").String(); s != "first" {
		t.Errorf("str string = %q", s)
	}
	if s := NewDocs([]int{7}).String(); !strings.Contains(s, "7") {
		t.Errorf("docs string = %q", s)
	}
	var zero Value
	if s := zero.String(); s != "<invalid>" {
		t.Errorf("invalid string = %q", s)
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		Docs: "docs", Num: "num", Str: "str", Labels: "labels",
		Groups: "groups", Vec: "vec", Invalid: "invalid",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
