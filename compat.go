package unify

// Deprecated constructors, kept for source compatibility with pre-0.2
// callers. unify.New with functional options is the only supported
// entry point; each shim below is a pure rewrite onto it (parity is
// pinned by TestDifferentialDeprecatedConstructorParity in
// compat_test.go) and adds no behavior of its own.

import (
	"unify/internal/corpus"
	"unify/internal/llm"
)

// Open builds a system over a named built-in dataset.
//
// Deprecated: use New with functional options, e.g.
// unify.New(unify.WithConfig(cfg)) or unify.New(unify.WithDataset(name)).
func Open(cfg Config) (*System, error) {
	return New(WithConfig(cfg))
}

// OpenDataset builds a system over an already-generated dataset.
//
// Deprecated: use New(unify.WithConfig(cfg), unify.WithCorpus(ds)).
func OpenDataset(ds *corpus.Dataset, cfg Config) (*System, error) {
	return New(WithConfig(cfg), WithCorpus(ds))
}

// OpenWithClients builds a system with caller-provided model clients (the
// extension point for real LLM backends).
//
// Deprecated: use New(unify.WithConfig(cfg), unify.WithCorpus(ds),
// unify.WithClients(planner, worker)).
func OpenWithClients(ds *corpus.Dataset, cfg Config, planner, worker llm.Client) (*System, error) {
	return New(WithConfig(cfg), WithCorpus(ds), WithClients(planner, worker))
}
