package unify

import (
	"context"
	"strings"
	"testing"

	"unify/internal/corpus"
	"unify/internal/docstore"
)

// Views must be answer-invisible: a system with materialized views serves
// byte-identical answer text to one without, on a cold first pass and on
// a warm second pass where most judgments come from the view.
func TestViewsAnswerParity(t *testing.T) {
	ds := diffDataset(t)
	off := diffSystem(t, ds, nil)
	on := diffSystem(t, ds, func(c *Config) { c.Views = true })
	queries := diffQueries(ds, 6)

	for pass := 0; pass < 2; pass++ {
		for _, q := range queries {
			a, err := off.Query(context.Background(), q)
			if err != nil {
				t.Fatalf("pass %d, views off, %q: %v", pass, q, err)
			}
			b, err := on.Query(context.Background(), q)
			if err != nil {
				t.Fatalf("pass %d, views on, %q: %v", pass, q, err)
			}
			if a.Text != b.Text {
				t.Errorf("pass %d, %q: views changed the answer:\n  off: %s\n  on:  %s", pass, q, a.Text, b.Text)
			}
		}
	}
	st := on.Views.Stats()
	if st.Rows == 0 || st.Backfills == 0 {
		t.Fatalf("views system materialized nothing: %+v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("warm pass served no view hits: %+v", st)
	}
}

// Answer.ViewHits surfaces per-query view accounting: zero on the cold
// run of a fresh filter, positive once its column is materialized.
func TestViewsAnswerHitAccounting(t *testing.T) {
	ds := diffDataset(t)
	sys := diffSystem(t, ds, func(c *Config) { c.Views = true })
	q := diffQueries(ds, 1)[0]

	cold, err := sys.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sys.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Text != warm.Text {
		t.Fatalf("warm answer diverged: %q vs %q", cold.Text, warm.Text)
	}
	if cold.ViewHits != 0 {
		t.Errorf("cold run reported %d view hits, want 0", cold.ViewHits)
	}
	if warm.ViewHits == 0 {
		t.Errorf("warm run reported 0 view hits, want > 0 (plan: %v)", warm.Plan.Nodes)
	}
}

// View rows keyed by content hash survive ingestion of new documents:
// after growing the corpus 10%, a warm re-run recomputes only the new
// documents and still answers exactly like a views-less system over the
// same mutated corpus.
func TestViewsSurviveIngest(t *testing.T) {
	full := diffDataset(t) // 150 docs
	base, err := corpus.GenerateN("sports", 135)
	if err != nil {
		t.Fatal(err)
	}
	queries := diffQueries(full, 5)

	warm := diffSystem(t, base, func(c *Config) { c.Views = true })
	plain := diffSystem(t, base, nil)
	for _, q := range queries {
		if _, err := warm.Query(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	preHits := warm.Views.Stats().Hits

	add := full.Documents()[135:]
	for _, sys := range []*System{warm, plain} {
		res, err := sys.Ingest(add, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Added != len(add) || res.Docs != 150 {
			t.Fatalf("unexpected ingest result %+v", res)
		}
	}

	before := warm.Views.Stats()
	for _, q := range queries {
		a, err := warm.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("warm post-ingest %q: %v", q, err)
		}
		b, err := plain.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("plain post-ingest %q: %v", q, err)
		}
		if a.Text != b.Text {
			t.Errorf("post-ingest answers diverged for %q:\n  views: %s\n  plain: %s", q, a.Text, b.Text)
		}
	}
	after := warm.Views.Stats()
	hits, misses := after.Hits-before.Hits, after.Misses-before.Misses
	if hits == 0 {
		t.Fatalf("post-ingest warm run served no view hits (pre-ingest hits %d)", preHits)
	}
	// 90% of the corpus is unchanged: the bulk of the post-ingest reads
	// must come from surviving rows, not recomputation.
	if rate := float64(hits) / float64(hits+misses); rate < 0.5 {
		t.Errorf("post-ingest view hit rate %.2f, want >= 0.5 (hits %d, misses %d)", rate, hits, misses)
	}
}

// Updating a document invalidates its view rows (content hash changes),
// and subsequent answers match a views-less system that applied the same
// mutation. StrictChecks is on in diffSystem, so every served row is also
// audited against live hashes (views.column_fresh).
func TestViewsInvalidateOnUpdate(t *testing.T) {
	ds := diffDataset(t)
	queries := diffQueries(ds, 4)
	warm := diffSystem(t, ds, func(c *Config) { c.Views = true })
	plain := diffSystem(t, ds, nil)
	for _, q := range queries {
		if _, err := warm.Query(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}

	doc := ds.Documents()[3]
	doc.Text = strings.ToUpper(doc.Text) + " Revised after an editorial pass."
	for _, sys := range []*System{warm, plain} {
		res, err := sys.Ingest(nil, []docstore.Document{doc})
		if err != nil {
			t.Fatal(err)
		}
		if res.Updated != 1 {
			t.Fatalf("unexpected ingest result %+v", res)
		}
		if sys == warm && res.InvalidatedRows == 0 {
			t.Fatalf("update invalidated no view rows; expected the warmed filter columns to hold doc %d", doc.ID)
		}
	}

	for _, q := range queries {
		a, err := warm.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("views post-update %q: %v", q, err)
		}
		b, err := plain.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("plain post-update %q: %v", q, err)
		}
		if a.Text != b.Text {
			t.Errorf("post-update answers diverged for %q:\n  views: %s\n  plain: %s", q, a.Text, b.Text)
		}
	}
}

// Ingest on a simulated cluster: new documents extend the shard
// assignment (existing placements frozen), and an M=4 system grown
// incrementally answers scatter queries byte-identically — text and
// virtual latency — to an M=4 system opened over the full corpus.
func TestClusterIngestMatchesStaticBuild(t *testing.T) {
	full := diffDataset(t)
	base, err := corpus.GenerateN("sports", 135)
	if err != nil {
		t.Fatal(err)
	}
	static := diffSystem(t, full, func(c *Config) { c.Machines = 4 })
	incr := diffSystem(t, base, func(c *Config) { c.Machines = 4 })
	if _, err := incr.Ingest(full.Documents()[135:], nil); err != nil {
		t.Fatal(err)
	}
	if got, want := incr.Sharding.Assignment(), static.Sharding.Assignment(); got != want {
		t.Fatalf("extended shard assignment diverged from the static build:\n  incr:   %s\n  static: %s", got, want)
	}

	for _, q := range diffQueries(full, 5) {
		a, err := static.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("static M=4 %q: %v", q, err)
		}
		b, err := incr.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("incremental M=4 %q: %v", q, err)
		}
		if a.Text != b.Text || a.TotalDur != b.TotalDur {
			t.Errorf("cluster ingest diverged for %q:\n  static: %s @%s\n  incr:   %s @%s",
				q, a.Text, a.TotalDur, b.Text, b.TotalDur)
		}
	}
}
