package unify

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strings"
	"testing"

	"unify/internal/workload"
)

// openCluster builds the golden-capture configuration at the given
// cluster width: sports at size 300, trained importance function, strict
// invariant checks, default cache.
func openCluster(t *testing.T, machines int) *System {
	t.Helper()
	sys, err := New(
		WithDataset("sports"),
		WithSize(300),
		WithTrainSCE(),
		WithStrictChecks(),
		WithMachines(machines),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// runClusterWorkload answers the first six seed workload queries
// sequentially, returning one answer line per query in the golden
// format (id, text, exec vtime, llm calls).
func runClusterWorkload(t *testing.T, sys *System) []string {
	t.Helper()
	queries := workload.Generate(sys.Dataset, 1, 1)[:6]
	lines := make([]string, len(queries))
	scattered := 0
	for i, q := range queries {
		ans, err := sys.Query(context.Background(), q.Text)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		lines[i] = fmt.Sprintf("%s\t%s\t%s\t%d", q.ID, ans.Text, ans.ExecDur, ans.LLMCalls)
		for _, node := range ans.Plan.Nodes {
			if _, ok := node.Args["_scatter"]; ok {
				scattered++
				break
			}
		}
	}
	if sys.Config.Machines > 1 && scattered == 0 {
		t.Fatalf("no query scattered on a %d-machine cluster", sys.Config.Machines)
	}
	return lines
}

// TestClusterM1MatchesSeedGolden pins the 1-machine cluster path to the
// goldens captured from the pre-cluster single-pool code: answers,
// schedules (exec vtime, call counts), and the full Prometheus
// exposition must all be byte-identical. This is the scale-out work's
// "M=1 changes nothing" regression bar.
func TestClusterM1MatchesSeedGolden(t *testing.T) {
	sys := openCluster(t, 1)
	got := strings.Join(runClusterWorkload(t, sys), "\n") + "\n"

	want, err := os.ReadFile("testdata/seed_m1_answers.tsv")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("answers diverged from seed golden:\ngot:\n%s\nwant:\n%s", got, want)
	}

	var buf bytes.Buffer
	sys.Metrics.Reg.WritePrometheus(&buf)
	wantProm, err := os.ReadFile("testdata/seed_m1_metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(wantProm) {
		t.Errorf("prometheus exposition diverged from seed golden:\ngot:\n%s\nwant:\n%s", buf.String(), wantProm)
	}
}

// TestClusterWidthsAgreeAndReplay asserts the scatter-correctness
// contract end to end: a 4-machine cluster answers the workload with
// byte-identical texts to the 1-machine run (schedules differ — that is
// the speedup — but answers may not), at least one query actually
// scatters, and a repeated 4-machine run is byte-identical down to its
// schedules.
func TestClusterWidthsAgreeAndReplay(t *testing.T) {
	m1 := runClusterWorkload(t, openCluster(t, 1))

	sysA := openCluster(t, 4)
	m4a := runClusterWorkload(t, sysA)
	m4b := runClusterWorkload(t, openCluster(t, 4))

	for i := range m1 {
		baseText := strings.SplitN(m1[i], "\t", 3)[1]
		wideText := strings.SplitN(m4a[i], "\t", 3)[1]
		if baseText != wideText {
			t.Errorf("query %d answer diverged across widths: m1=%q m4=%q", i, baseText, wideText)
		}
		if m4a[i] != m4b[i] {
			t.Errorf("repeated 4-machine run diverged at query %d:\n%s\n%s", i, m4a[i], m4b[i])
		}
	}

	if sysA.Sharding == nil || sysA.Sharding.N != 4 {
		t.Fatalf("4-machine system sharding: %+v", sysA.Sharding)
	}
	if ps := sysA.Pool.Stats(); ps.Machines != 4 || len(ps.PerMachine) != 4 {
		t.Fatalf("4-machine pool stats: machines=%d per_machine=%d", ps.Machines, len(ps.PerMachine))
	}
}
