package unify

// Benchmarks regenerating the paper's tables and figures at reduced scale
// (fast enough for `go test -bench=.`), plus ablations over the design
// choices DESIGN.md calls out. Paper-scale runs use cmd/unify-bench.
//
// Reported custom metrics:
//   accuracy_%      fraction of workload queries answered correctly
//   sim_latency_s   simulated end-to-end latency per query (virtual clock)
//   qerr_p50/p95    q-error percentiles (Table III)

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"unify/internal/baselines"
	"unify/internal/corpus"
	"unify/internal/embedding"
	"unify/internal/llm"
	"unify/internal/nlq"
	"unify/internal/optimizer"
	"unify/internal/sce"
	"unify/internal/vector"
	"unify/internal/workload"
)

const benchSize = 400 // documents per corpus in benchmark mode

func benchSystem(b *testing.B, mode optimizer.Mode) (*System, []workload.Query) {
	b.Helper()
	ds, err := corpus.GenerateN("sports", benchSize)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := OpenDataset(ds, Config{Dataset: "sports", Mode: mode, TrainSCE: true})
	if err != nil {
		b.Fatal(err)
	}
	return sys, workload.Generate(ds, 1, 42)
}

func runWorkload(b *testing.B, run func(q workload.Query) (string, time.Duration, error), queries []workload.Query) (acc float64, avgLat time.Duration) {
	b.Helper()
	correct := 0
	var total time.Duration
	for _, q := range queries {
		text, lat, err := run(q)
		if err != nil {
			continue
		}
		if workload.Score(q, text) {
			correct++
		}
		total += lat
	}
	return float64(correct) / float64(len(queries)), total / time.Duration(len(queries))
}

// BenchmarkFig4 regenerates Figure 4's accuracy and latency bars (sports,
// reduced scale) — one sub-benchmark per method.
func BenchmarkFig4(b *testing.B) {
	sys, queries := benchSystem(b, optimizer.CostBased)
	methods := map[string]func(q workload.Query) (string, time.Duration, error){
		"Unify": func(q workload.Query) (string, time.Duration, error) {
			ans, err := sys.Query(context.Background(), q.Text)
			if err != nil {
				return "", 0, err
			}
			return ans.Text, ans.TotalDur, nil
		},
	}
	for _, name := range []string{"RAG", "RecurRAG", "LLMPlan", "Sample", "Manual"} {
		var bl baselines.Baseline
		switch name {
		case "RAG":
			bl = baselines.NewRAG(sys.Store, sys.WorkerClient)
		case "RecurRAG":
			bl = baselines.NewRecurRAG(sys.Store, sys.WorkerClient)
		case "LLMPlan":
			bl = baselines.NewLLMPlan(sys.Store, sys.WorkerClient)
		case "Sample":
			bl = baselines.NewSample(sys.Store, sys.WorkerClient)
		case "Manual":
			bl = baselines.NewManual(sys.Store, sys.WorkerClient)
		}
		blc := bl
		methods[name] = func(q workload.Query) (string, time.Duration, error) {
			res, err := blc.Run(context.Background(), q.Text)
			return res.Text, res.Latency, err
		}
	}
	order := []string{"RAG", "RecurRAG", "LLMPlan", "Sample", "Manual", "Unify"}
	for _, name := range order {
		run := methods[name]
		b.Run(name, func(b *testing.B) {
			var acc float64
			var lat time.Duration
			for i := 0; i < b.N; i++ {
				acc, lat = runWorkload(b, run, queries)
			}
			b.ReportMetric(100*acc, "accuracy_%")
			b.ReportMetric(lat.Seconds(), "sim_latency_s")
		})
	}
}

// BenchmarkTable3SCE regenerates Table III's q-errors at reduced scale.
func BenchmarkTable3SCE(b *testing.B) {
	sys, queries := benchSystem(b, optimizer.CostBased)
	preds := workload.SemanticConditions(queries)
	ctx := context.Background()
	truths := map[string]float64{}
	for _, p := range preds {
		tc, err := sys.Estimator.TrueCardinality(ctx, p, 16)
		if err != nil {
			b.Fatal(err)
		}
		truths[p] = float64(tc)
	}
	ns := benchSize / 100 * 2 // 2% budget at this reduced scale
	for _, method := range []sce.Method{sce.Uniform, sce.Stratified, sce.AIS, sce.Unify} {
		method := method
		b.Run(string(method), func(b *testing.B) {
			var qerrs []float64
			for i := 0; i < b.N; i++ {
				qerrs = qerrs[:0]
				for _, p := range preds {
					for r := 0; r < 4; r++ {
						e, _, err := sys.Estimator.EstimateSeeded(ctx, method, p, ns, fmt.Sprint("rep", r))
						if err != nil {
							b.Fatal(err)
						}
						qerrs = append(qerrs, sce.QError(e, truths[p]))
					}
				}
			}
			sort.Float64s(qerrs)
			b.ReportMetric(qerrs[len(qerrs)/2], "qerr_p50")
			b.ReportMetric(qerrs[len(qerrs)*95/100], "qerr_p95")
		})
	}
}

// BenchmarkFig5aLogicalOpt regenerates Figure 5(a): DAG-parallel vs
// sequential operator execution.
func BenchmarkFig5aLogicalOpt(b *testing.B) {
	sys, queries := benchSystem(b, optimizer.CostBased)
	var par, ser time.Duration
	b.Run("Unify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			par, ser = 0, 0
			n := 0
			for _, q := range queries {
				ans, err := sys.Query(context.Background(), q.Text)
				if err != nil {
					continue
				}
				par += ans.ExecDur
				ser += ans.SerialExecDur
				n++
			}
			par /= time.Duration(n)
			ser /= time.Duration(n)
		}
		b.ReportMetric(par.Seconds(), "sim_latency_s")
	})
	b.Run("Unify-noLO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = i
		}
		b.ReportMetric(ser.Seconds(), "sim_latency_s")
	})
}

// BenchmarkFig5bPhysicalOpt regenerates Figure 5(b): Rule vs cost-based vs
// ground-truth physical optimization.
func BenchmarkFig5bPhysicalOpt(b *testing.B) {
	for _, variant := range []struct {
		name string
		mode optimizer.Mode
	}{
		{"Unify-Rule", optimizer.Rule},
		{"Unify", optimizer.CostBased},
		{"Unify-GD", optimizer.GroundTruth},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			sys, queries := benchSystem(b, variant.mode)
			var lat time.Duration
			for i := 0; i < b.N; i++ {
				var total time.Duration
				n := 0
				for _, q := range queries {
					ans, err := sys.Query(context.Background(), q.Text)
					if err != nil {
						continue
					}
					total += ans.ExecDur
					n++
				}
				lat = total / time.Duration(n)
			}
			b.ReportMetric(lat.Seconds(), "sim_latency_s")
		})
	}
}

// BenchmarkAblationK sweeps the candidate-operator count k (paper default
// 5): too small misses operators, too large wastes rerank calls.
func BenchmarkAblationK(b *testing.B) {
	ds, err := corpus.GenerateN("sports", benchSize)
	if err != nil {
		b.Fatal(err)
	}
	queries := workload.Generate(ds, 1, 42)
	for _, k := range []int{2, 5, 8} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			sys, err := OpenDataset(ds, Config{Dataset: "sports", K: k, TrainSCE: true})
			if err != nil {
				b.Fatal(err)
			}
			var acc float64
			var plend time.Duration
			for i := 0; i < b.N; i++ {
				correct, n := 0, 0
				var ptotal time.Duration
				for _, q := range queries {
					ans, err := sys.Query(context.Background(), q.Text)
					if err != nil {
						continue
					}
					if workload.Score(q, ans.Text) {
						correct++
					}
					ptotal += ans.PlanningDur
					n++
				}
				acc = float64(correct) / float64(len(queries))
				plend = ptotal / time.Duration(n)
			}
			b.ReportMetric(100*acc, "accuracy_%")
			b.ReportMetric(plend.Seconds(), "planning_s")
		})
	}
}

// BenchmarkAblationIndexScan compares the index-assisted semantic filter
// against a full linear scan on a selective predicate.
func BenchmarkAblationIndexScan(b *testing.B) {
	sys, _ := benchSystem(b, optimizer.CostBased)
	ctx := context.Background()
	q := "How many questions about fencing have more than 100 views?"
	b.Run("CostBased(IndexFilter)", func(b *testing.B) {
		var lat time.Duration
		for i := 0; i < b.N; i++ {
			ans, err := sys.Query(ctx, q)
			if err != nil {
				b.Fatal(err)
			}
			lat = ans.ExecDur
		}
		b.ReportMetric(lat.Seconds(), "sim_latency_s")
	})
	b.Run("Rule(LinearSemantic)", func(b *testing.B) {
		rsys, err := OpenDataset(sys.Dataset, Config{Dataset: "sports", Mode: optimizer.Rule, TrainSCE: true})
		if err != nil {
			b.Fatal(err)
		}
		var lat time.Duration
		for i := 0; i < b.N; i++ {
			ans, err := rsys.Query(ctx, q)
			if err != nil {
				b.Fatal(err)
			}
			lat = ans.ExecDur
		}
		b.ReportMetric(lat.Seconds(), "sim_latency_s")
	})
}

// BenchmarkHNSWVsFlat measures the raw vector-search ablation behind
// IndexScan.
func BenchmarkHNSWVsFlat(b *testing.B) {
	ds, err := corpus.GenerateN("sports", 2000)
	if err != nil {
		b.Fatal(err)
	}
	emb := embedding.New(embedding.DefaultDim)
	flat := vector.NewFlat()
	hnsw := vector.NewHNSW(vector.DefaultHNSWConfig())
	for _, d := range ds.Docs {
		v := emb.Embed(d.Text)
		flat.Add(d.ID, v)
		hnsw.Add(d.ID, v)
	}
	query := emb.Embed("related to injury recovery")
	b.Run("Flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			flat.Search(query, 50)
		}
	})
	b.Run("HNSW", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hnsw.Search(query, 50)
		}
	})
}

// BenchmarkEmbedding measures the text-embedding substrate.
func BenchmarkEmbedding(b *testing.B) {
	emb := embedding.New(embedding.DefaultDim)
	text := "Title: How to recover from a sprained ankle\nBody: injury recovery advice for marathon training"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		emb.Embed(text)
	}
}

// BenchmarkQueryParse measures the comprehension grammar.
func BenchmarkQueryParse(b *testing.B) {
	q := "Among questions with over 500 views, which sport has the highest ratio of number of questions related to injury to number of questions related to training?"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := nlq.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryReduction measures one reduction step.
func BenchmarkQueryReduction(b *testing.B) {
	q, err := nlq.Parse("How many questions about football have more than 500 views?")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := nlq.Reduce(q, "Filter", 1); !ok {
			b.Fatal("reduce failed")
		}
	}
}

// BenchmarkSimLLM measures a single simulated model invocation (memoized
// and cold paths).
func BenchmarkSimLLM(b *testing.B) {
	cfg := llm.DefaultSimConfig()
	sim := llm.NewSim(cfg)
	ds, _ := corpus.GenerateN("sports", 10)
	prompt := llm.BuildPrompt("filter_doc", map[string]string{
		"condition": "related to injury",
		"doc":       ds.Docs[0].Text,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Complete(context.Background(), prompt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndQuery measures one complete Unify query (planning +
// optimization + execution) on the reduced corpus.
func BenchmarkEndToEndQuery(b *testing.B) {
	sys, _ := benchSystem(b, optimizer.CostBased)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query(ctx, "What is the average score of questions related to injury?"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTau sweeps the plan-diversity parameter τ (paper
// default 0.75): τ=1 explores exhaustively; small τ backtracks early.
func BenchmarkAblationTau(b *testing.B) {
	ds, err := corpus.GenerateN("sports", benchSize)
	if err != nil {
		b.Fatal(err)
	}
	queries := workload.Generate(ds, 1, 42)
	for _, tau := range []float64{0.25, 0.75, 1.0} {
		tau := tau
		b.Run(fmt.Sprintf("tau=%.2f", tau), func(b *testing.B) {
			sys, err := OpenDataset(ds, Config{Dataset: "sports", Tau: tau, TrainSCE: true})
			if err != nil {
				b.Fatal(err)
			}
			var acc float64
			var plan time.Duration
			for i := 0; i < b.N; i++ {
				correct, n := 0, 0
				var total time.Duration
				for _, q := range queries {
					ans, err := sys.Query(context.Background(), q.Text)
					if err != nil {
						continue
					}
					if workload.Score(q, ans.Text) {
						correct++
					}
					total += ans.PlanningDur
					n++
				}
				acc = float64(correct) / float64(len(queries))
				plan = total / time.Duration(n)
			}
			b.ReportMetric(100*acc, "accuracy_%")
			b.ReportMetric(plan.Seconds(), "planning_s")
		})
	}
}

// BenchmarkAblationSCEBuckets sweeps the importance-function resolution.
func BenchmarkAblationSCEBuckets(b *testing.B) {
	ds, err := corpus.GenerateN("sports", 1200)
	if err != nil {
		b.Fatal(err)
	}
	queries := workload.Generate(ds, 3, 42)
	preds := workload.SemanticConditions(queries)
	ctx := context.Background()
	for _, buckets := range []int{4, 8, 16} {
		buckets := buckets
		b.Run(fmt.Sprintf("buckets=%d", buckets), func(b *testing.B) {
			sys, err := OpenDataset(ds, Config{Dataset: "sports", SCEBuckets: buckets, TrainSCE: true})
			if err != nil {
				b.Fatal(err)
			}
			truths := map[string]float64{}
			for _, p := range preds {
				tc, err := sys.Estimator.TrueCardinality(ctx, p, 16)
				if err != nil {
					b.Fatal(err)
				}
				truths[p] = float64(tc)
			}
			var qerrs []float64
			for i := 0; i < b.N; i++ {
				qerrs = qerrs[:0]
				for _, p := range preds {
					e, _, err := sys.Estimator.Estimate(ctx, sce.Unify, p, 12)
					if err != nil {
						b.Fatal(err)
					}
					qerrs = append(qerrs, sce.QError(e, truths[p]))
				}
			}
			sort.Float64s(qerrs)
			b.ReportMetric(qerrs[len(qerrs)/2], "qerr_p50")
			b.ReportMetric(qerrs[len(qerrs)-1], "qerr_max")
		})
	}
}

// BenchmarkAblationBatchSize sweeps the per-invocation document batch.
func BenchmarkAblationBatchSize(b *testing.B) {
	ds, err := corpus.GenerateN("sports", benchSize)
	if err != nil {
		b.Fatal(err)
	}
	q := "How many questions about football have more than 200 views?"
	for _, batch := range []int{4, 16, 32} {
		batch := batch
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			sys, err := OpenDataset(ds, Config{Dataset: "sports", BatchSize: batch, TrainSCE: true})
			if err != nil {
				b.Fatal(err)
			}
			var lat time.Duration
			for i := 0; i < b.N; i++ {
				ans, err := sys.Query(context.Background(), q)
				if err != nil {
					b.Fatal(err)
				}
				lat = ans.ExecDur
			}
			b.ReportMetric(lat.Seconds(), "sim_latency_s")
		})
	}
}

// BenchmarkRepeatedWorkload measures the shared cache hierarchy on a
// repeated query batch: a cold pass primes every layer during setup, then
// each iteration replays the batch warm. Reported metrics: the cold/warm
// latency ratio plus per-layer hit rates (paper §motivation: analytics
// workloads re-issue near-identical queries and sub-plans).
func BenchmarkRepeatedWorkload(b *testing.B) {
	sys, queries := benchSystem(b, optimizer.CostBased)
	queries = queries[:10]
	ctx := context.Background()
	var cold time.Duration
	for _, q := range queries {
		ans, err := sys.Query(ctx, q.Text)
		if err != nil {
			b.Fatal(err)
		}
		cold += ans.TotalDur
	}
	b.ResetTimer()
	var warm time.Duration
	for i := 0; i < b.N; i++ {
		warm = 0
		for _, q := range queries {
			ans, err := sys.Query(ctx, q.Text)
			if err != nil {
				b.Fatal(err)
			}
			warm += ans.TotalDur
		}
	}
	if warm > 0 {
		b.ReportMetric(float64(cold)/float64(warm), "cold/warm_x")
	}
	st := sys.CacheStats()
	b.ReportMetric(st["llm"].HitRate(), "llm_hit_rate")
	b.ReportMetric(st["plan"].HitRate(), "plan_hit_rate")
	b.ReportMetric(warm.Seconds()/float64(len(queries)), "warm_sim_latency_s")
}
