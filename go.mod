module unify

go 1.22
