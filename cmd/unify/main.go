// Command unify answers ad-hoc natural-language analytics queries over a
// built-in synthetic dataset, printing the answer, the physical plan, and
// the simulated cost breakdown.
//
// Usage:
//
//	unify -dataset sports -size 1000 "How many questions about football have more than 500 views?"
//	unify -list-ops
//	unify -dataset law "What is the average score of questions related to liability?"
//	unify -analyze "How many questions are about tennis?"
//	unify -dataset sports -size 300 -topn 6 top
//
// The "top" subcommand runs a slice of the built-in query workload and
// prints a per-operator-class cost profile (vtime share, LLM calls,
// tokens, cache hits) sorted by attributed vtime — the CLI view of the
// server's /v1/profile endpoint.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"unify"
	"unify/internal/obs"
	"unify/internal/ops"
	"unify/internal/workload"
)

func main() {
	var (
		dataset     = flag.String("dataset", "sports", "dataset: sports, ai, law, wiki")
		size        = flag.Int("size", 0, "corpus size (0 = paper size)")
		listOps     = flag.Bool("list-ops", false, "list the operator registry (Table II) and exit")
		verbose     = flag.Bool("v", false, "print the physical plan")
		planOnly    = flag.Bool("plan", false, "EXPLAIN: print the optimized plan without executing")
		analyze     = flag.Bool("analyze", false, "EXPLAIN ANALYZE: execute with tracing and print the span tree")
		interactive = flag.Bool("i", false, "interactive mode: read queries from stdin")
		dotOut      = flag.Bool("dot", false, "print the plan as Graphviz DOT and exit")
		timeout     = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
		topN        = flag.Int("topn", 8, "queries to run for the top subcommand")
		slowQuery   = flag.Duration("slow-query", 0, "log queries whose virtual time meets this threshold (0 = off)")
		machines    = flag.Int("machines", 1, "simulated cluster width (1 = the paper's single machine)")
		lang        = flag.String("lang", "auto", "query language: auto, nl, or usql")
		views       = flag.Bool("views", false, "materialize semantic views (serve repeated per-doc work from content-hash-keyed columns)")
	)
	flag.Parse()

	if *listOps {
		printOps()
		return
	}
	query := strings.Join(flag.Args(), " ")
	top := flag.Arg(0) == "top" && flag.NArg() == 1
	if strings.TrimSpace(query) == "" && !*interactive {
		fmt.Fprintln(os.Stderr, "usage: unify [-dataset name] [-size n] [-lang auto|nl|usql] [-v|-plan|-i] \"<query>\" | top")
		os.Exit(2)
	}
	language, err := unify.ParseLanguage(*lang)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lang:", err)
		os.Exit(2)
	}

	sysOpts := []unify.Option{
		unify.WithDataset(*dataset),
		unify.WithSize(*size),
		unify.WithTrainSCE(),
		unify.WithSlowQueryVTime(*slowQuery),
		unify.WithMachines(*machines),
	}
	if *views {
		sysOpts = append(sysOpts, unify.WithViews())
	}
	sys, err := unify.New(sysOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	if top {
		runTop(sys, *topN)
		return
	}
	if *interactive {
		repl(sys, *verbose)
		return
	}
	if *planOnly || *dotOut {
		plan, dur, err := sys.Plan(context.Background(), query, unify.WithLanguage(language))
		if err != nil {
			fmt.Fprintln(os.Stderr, "plan:", err)
			os.Exit(1)
		}
		if *dotOut {
			fmt.Print(plan.DOT())
			return
		}
		fmt.Print(plan)
		fmt.Printf("planning latency: %.1fs\n", dur.Seconds())
		return
	}
	ctx := context.Background()
	opts := []unify.QueryOption{unify.WithLanguage(language)}
	if *analyze {
		ctx = obs.WithTracer(ctx, obs.NewTracer())
	}
	if *timeout > 0 {
		opts = append(opts, unify.WithTimeout(*timeout))
	}
	ans, err := sys.Query(ctx, query, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "query:", err)
		os.Exit(1)
	}
	fmt.Printf("answer: %s\n", ans.Text)
	fmt.Printf("latency: total=%.1fs (planning=%.1fs estimation=%.1fs execution=%.1fs), %d LLM calls\n",
		ans.TotalDur.Seconds(), ans.PlanningDur.Seconds(), ans.EstimationDur.Seconds(),
		ans.ExecDur.Seconds(), ans.LLMCalls)
	if ans.Fallback {
		fmt.Println("note: the planner fell back to the Generate (RAG) operator")
	}
	if ans.ViewHits > 0 {
		fmt.Printf("views: %d per-document judgments served from materialized columns\n", ans.ViewHits)
	}
	if *analyze && ans.Trace != nil {
		fmt.Println("EXPLAIN ANALYZE:")
		fmt.Print(obs.Render(ans.Trace))
	}
	if *verbose {
		fmt.Print(ans.Plan)
		fmt.Println("per-operator execution:")
		for _, ns := range ans.Nodes {
			fmt.Printf("  [%d] %-10s %-18s in=%-5d out=%-5d calls=%-4d busy=%.1fs\n",
				ns.NodeID, ns.Op, ns.Physical, ns.InCard, ns.OutCard, ns.LLMCalls, ns.Busy.Seconds())
		}
	}
}

// runTop runs a slice of the built-in workload and prints a top-style
// per-operator-class cost profile from the system's cumulative profiler.
func runTop(sys *unify.System, n int) {
	queries := workload.Generate(sys.Dataset, 1, 1)
	if n > 0 && len(queries) > n {
		queries = queries[:n]
	}
	fmt.Printf("running %d workload queries...\n", len(queries))
	for _, q := range queries {
		if _, err := sys.Query(context.Background(), q.Text); err != nil {
			fmt.Fprintf(os.Stderr, "query %s: %v\n", q.ID, err)
		}
	}
	snap := sys.Profiler.Snapshot()
	fmt.Printf("\n%d queries, %.1fs total vtime\n\n", snap.Queries, snap.TotalVTimeSecs)
	fmt.Printf("%-28s %6s %7s %7s %9s %9s %9s %7s\n",
		"OPERATOR CLASS", "EXECS", "CALLS", "CACHED", "TOKENS", "BUSY(S)", "VTIME(S)", "SHARE")
	names := make([]string, 0, len(snap.Classes))
	for name := range snap.Classes {
		names = append(names, name)
	}
	// Highest attributed vtime first; name breaks ties deterministically.
	sort.Slice(names, func(i, j int) bool {
		a, b := snap.Classes[names[i]], snap.Classes[names[j]]
		if a.ShareSecs != b.ShareSecs {
			return a.ShareSecs > b.ShareSecs
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		c := snap.Classes[name]
		fmt.Printf("%-28s %6d %7d %7d %9d %9.1f %9.1f %6.1f%%\n",
			name, c.Executions, c.LLMCalls, c.CachedCalls, c.InTokens+c.OutTokens,
			c.BusySecs, c.ShareSecs, 100*c.ShareOfTotal)
	}
	if pool := sys.Pool; pool != nil && pool.Machines() > 1 {
		ps := pool.Stats()
		fmt.Printf("\ncluster: %d machines x %d slots", ps.Machines, ps.Slots)
		if sh := sys.Sharding; sh != nil {
			fmt.Printf(", sharding %s", sh)
		}
		fmt.Println()
		for _, pm := range ps.PerMachine {
			fmt.Printf("  machine %d: util %5.1f%%  cum %5.1f%%  active %d\n",
				pm.Machine, 100*pm.Utilization, 100*pm.CumUtilization, pm.Active)
		}
	}
	if v := sys.Views; v != nil {
		st := v.Stats()
		fmt.Printf("\nmaterialized views: %d columns, %d rows, hit rate %.1f%% (%d hits / %d misses, %d backfills, %d invalidated)\n",
			st.Columns, st.Rows, 100*st.HitRate(), st.Hits, st.Misses, st.Backfills, st.Invalidated)
		cols := v.Columns()
		sort.Slice(cols, func(i, j int) bool {
			if cols[i].Rows != cols[j].Rows {
				return cols[i].Rows > cols[j].Rows
			}
			return cols[i].Op+cols[i].Target < cols[j].Op+cols[j].Target
		})
		if len(cols) > 5 {
			cols = cols[:5]
		}
		for _, c := range cols {
			target := c.Target
			if len(target) > 48 {
				target = target[:45] + "..."
			}
			fmt.Printf("  %-9s %5d rows  %s\n", c.Op, c.Rows, target)
		}
	}
	if sl := sys.SlowLog; sl != nil {
		fmt.Printf("\nslow queries (vtime >= %s): %d\n", sl.Threshold(), sl.Count())
	}
	if ts := sys.Traces; ts != nil {
		maxTraces, _ := ts.Bounds()
		fmt.Printf("retained traces: %d/%d (%d evicted)\n", ts.Len(), maxTraces, ts.Evicted())
		traces := ts.List(obs.TraceFilter{})
		sort.SliceStable(traces, func(i, j int) bool { return traces[i].VTimeSecs > traces[j].VTimeSecs })
		if len(traces) > 5 {
			traces = traces[:5]
		}
		fmt.Println("\nslowest queries:")
		for _, tr := range traces {
			q := tr.Query
			if len(q) > 60 {
				q = q[:57] + "..."
			}
			fmt.Printf("  %-8s %7.1fs %4d calls  %s\n", tr.ID, tr.VTimeSecs, tr.LLMCalls, q)
		}
	}
}

// repl reads one query per line and answers each.
func repl(sys *unify.System, verbose bool) {
	fmt.Println("unify> type a natural-language analytics query per line (ctrl-D to exit)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024)
	for {
		fmt.Print("unify> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		q := strings.TrimSpace(sc.Text())
		if q == "" {
			continue
		}
		if q == "exit" || q == "quit" {
			return
		}
		ans, err := sys.Query(context.Background(), q)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%s   [%.1fs, %d LLM calls]\n", ans.Text, ans.TotalDur.Seconds(), ans.LLMCalls)
		if verbose {
			fmt.Print(ans.Plan)
		}
	}
}

func printOps() {
	fmt.Println("Logical operators (Table II):")
	for _, spec := range ops.All() {
		var pre, sem []string
		for _, p := range spec.Phys {
			if p.LLMBased {
				sem = append(sem, p.Name)
			} else {
				pre = append(pre, p.Name)
			}
		}
		fmt.Printf("  %-14s pre-programmed: %-40s llm-based: %s\n",
			spec.Name, strings.Join(pre, ","), strings.Join(sem, ","))
		fmt.Printf("  %14s logical representations: %s\n", "", strings.Join(spec.LRs, " | "))
	}
}
