// Command unify answers ad-hoc natural-language analytics queries over a
// built-in synthetic dataset, printing the answer, the physical plan, and
// the simulated cost breakdown.
//
// Usage:
//
//	unify -dataset sports -size 1000 "How many questions about football have more than 500 views?"
//	unify -list-ops
//	unify -dataset law "What is the average score of questions related to liability?"
//	unify -analyze "How many questions are about tennis?"
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"unify"
	"unify/internal/obs"
	"unify/internal/ops"
)

func main() {
	var (
		dataset     = flag.String("dataset", "sports", "dataset: sports, ai, law, wiki")
		size        = flag.Int("size", 0, "corpus size (0 = paper size)")
		listOps     = flag.Bool("list-ops", false, "list the operator registry (Table II) and exit")
		verbose     = flag.Bool("v", false, "print the physical plan")
		planOnly    = flag.Bool("plan", false, "EXPLAIN: print the optimized plan without executing")
		analyze     = flag.Bool("analyze", false, "EXPLAIN ANALYZE: execute with tracing and print the span tree")
		interactive = flag.Bool("i", false, "interactive mode: read queries from stdin")
		dotOut      = flag.Bool("dot", false, "print the plan as Graphviz DOT and exit")
		timeout     = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
	)
	flag.Parse()

	if *listOps {
		printOps()
		return
	}
	query := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(query) == "" && !*interactive {
		fmt.Fprintln(os.Stderr, "usage: unify [-dataset name] [-size n] [-v|-plan|-i] \"<natural language query>\"")
		os.Exit(2)
	}

	sys, err := unify.New(
		unify.WithDataset(*dataset),
		unify.WithSize(*size),
		unify.WithTrainSCE(),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	if *interactive {
		repl(sys, *verbose)
		return
	}
	if *planOnly || *dotOut {
		plan, dur, err := sys.Plan(context.Background(), query)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plan:", err)
			os.Exit(1)
		}
		if *dotOut {
			fmt.Print(plan.DOT())
			return
		}
		fmt.Print(plan)
		fmt.Printf("planning latency: %.1fs\n", dur.Seconds())
		return
	}
	ctx := context.Background()
	var opts []unify.QueryOption
	if *analyze {
		ctx = obs.WithTracer(ctx, obs.NewTracer())
	}
	if *timeout > 0 {
		opts = append(opts, unify.WithTimeout(*timeout))
	}
	ans, err := sys.Query(ctx, query, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "query:", err)
		os.Exit(1)
	}
	fmt.Printf("answer: %s\n", ans.Text)
	fmt.Printf("latency: total=%.1fs (planning=%.1fs estimation=%.1fs execution=%.1fs), %d LLM calls\n",
		ans.TotalDur.Seconds(), ans.PlanningDur.Seconds(), ans.EstimationDur.Seconds(),
		ans.ExecDur.Seconds(), ans.LLMCalls)
	if ans.Fallback {
		fmt.Println("note: the planner fell back to the Generate (RAG) operator")
	}
	if *analyze && ans.Trace != nil {
		fmt.Println("EXPLAIN ANALYZE:")
		fmt.Print(obs.Render(ans.Trace))
	}
	if *verbose {
		fmt.Print(ans.Plan)
		fmt.Println("per-operator execution:")
		for _, ns := range ans.Nodes {
			fmt.Printf("  [%d] %-10s %-18s in=%-5d out=%-5d calls=%-4d busy=%.1fs\n",
				ns.NodeID, ns.Op, ns.Physical, ns.InCard, ns.OutCard, ns.LLMCalls, ns.Busy.Seconds())
		}
	}
}

// repl reads one query per line and answers each.
func repl(sys *unify.System, verbose bool) {
	fmt.Println("unify> type a natural-language analytics query per line (ctrl-D to exit)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024)
	for {
		fmt.Print("unify> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		q := strings.TrimSpace(sc.Text())
		if q == "" {
			continue
		}
		if q == "exit" || q == "quit" {
			return
		}
		ans, err := sys.Query(context.Background(), q)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%s   [%.1fs, %d LLM calls]\n", ans.Text, ans.TotalDur.Seconds(), ans.LLMCalls)
		if verbose {
			fmt.Print(ans.Plan)
		}
	}
}

func printOps() {
	fmt.Println("Logical operators (Table II):")
	for _, spec := range ops.All() {
		var pre, sem []string
		for _, p := range spec.Phys {
			if p.LLMBased {
				sem = append(sem, p.Name)
			} else {
				pre = append(pre, p.Name)
			}
		}
		fmt.Printf("  %-14s pre-programmed: %-40s llm-based: %s\n",
			spec.Name, strings.Join(pre, ","), strings.Join(sem, ","))
		fmt.Printf("  %14s logical representations: %s\n", "", strings.Join(spec.LRs, " | "))
	}
}
