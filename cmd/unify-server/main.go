// Command unify-server serves a Unify system over HTTP.
//
//	unify-server -dataset sports -size 1000 -addr :8080
//
//	curl -s localhost:8080/v1/health
//	curl -s -X POST localhost:8080/v1/query \
//	     -d '{"query": "How many questions about football have more than 500 views?"}'
//	curl -s -X POST localhost:8080/v1/plan -d '{"query": "..."}'   # EXPLAIN
//	curl -s localhost:8080/v1/operators
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"unify"
	"unify/internal/server"
)

func main() {
	var (
		dataset = flag.String("dataset", "sports", "dataset: sports, ai, law, wiki")
		size    = flag.Int("size", 0, "corpus size (0 = paper size)")
		addr    = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	fmt.Printf("opening %s corpus...\n", *dataset)
	sys, err := unify.Open(unify.Config{Dataset: *dataset, Size: *size, TrainSCE: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d documents on %s\n", sys.Store.Len(), *addr)
	log.Fatal(http.ListenAndServe(*addr, server.New(sys)))
}
