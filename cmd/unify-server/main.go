// Command unify-server serves a Unify system over HTTP.
//
//	unify-server -dataset sports -size 1000 -addr :8080
//
//	curl -s localhost:8080/v1/health
//	curl -s -X POST localhost:8080/v1/query \
//	     -d '{"query": "How many questions about football have more than 500 views?"}'
//	curl -s -X POST localhost:8080/v1/plan -d '{"query": "..."}'   # EXPLAIN
//	curl -s localhost:8080/v1/operators
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"unify"
	"unify/internal/server"
)

func main() {
	var (
		dataset       = flag.String("dataset", "sports", "dataset: sports, ai, law, wiki")
		size          = flag.Int("size", 0, "corpus size (0 = paper size)")
		addr          = flag.String("addr", ":8080", "listen address")
		maxConcurrent = flag.Int("max-concurrent", server.DefaultMaxConcurrent,
			"queries executing at once (admission control)")
		maxQueue = flag.Int("max-queue", server.DefaultMaxQueue,
			"queries waiting in the admission queue before 429s")
		timeout   = flag.Duration("timeout", 0, "per-query wall-clock bound, queue wait included (0 = server default)")
		maxTraces = flag.Int("max-traces", 0,
			"retained query traces for /v1/traces (0 = default, negative disables retention)")
		maxTraceSpans = flag.Int("max-trace-spans", 0,
			"spans retained per stored trace (0 = default)")
		slowQuery = flag.Duration("slow-query", 0,
			"log queries whose virtual time meets this threshold (0 = off)")
		machines = flag.Int("machines", 1, "simulated cluster width (1 = the paper's single machine)")
		batch    = flag.Bool("batch", false,
			"coalesce compatible operator LLM calls across concurrent queries (continuous batching)")
		batchWindow = flag.Duration("batch-window", 0,
			"virtual-time window for joining a freshly granted batch (0 = default)")
		batchCap = flag.Duration("batch-cap", 0,
			"fairness cap on a batched invocation's duration (0 = default, negative disables)")
		maxBatch = flag.Int("max-batch", 0, "max calls per batched invocation (0 = default)")
		views    = flag.Bool("views", false,
			"materialize semantic views (serve repeated per-doc work from content-hash-keyed columns)")
	)
	flag.Parse()

	opts := []unify.Option{
		unify.WithDataset(*dataset),
		unify.WithSize(*size),
		unify.WithTrainSCE(),
		unify.WithTraceRetention(*maxTraces, *maxTraceSpans),
		unify.WithSlowQueryVTime(*slowQuery),
		unify.WithMachines(*machines),
	}
	if *batch {
		opts = append(opts,
			unify.WithBatching(),
			unify.WithBatchWindow(*batchWindow),
			unify.WithBatchFairnessCap(*batchCap),
			unify.WithMaxBatch(*maxBatch),
		)
	}
	if *views {
		opts = append(opts, unify.WithViews())
	}
	fmt.Printf("opening %s corpus...\n", *dataset)
	sys, err := unify.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(sys)
	srv.SetLimits(*maxConcurrent, *maxQueue)
	if *timeout > 0 {
		srv.Timeout = *timeout
	}
	fmt.Printf("serving %d documents on %s (max %d concurrent, %d queued)\n",
		sys.Store.Len(), *addr, *maxConcurrent, *maxQueue)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
