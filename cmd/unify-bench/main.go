// Command unify-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	unify-bench -exp all                # every experiment at paper scale
//	unify-bench -exp fig4 -size 500 -per 2 -datasets sports
//	unify-bench -exp table3
//	unify-bench -exp fig5a,fig5b -size 800
//	unify-bench -exp cache -size 400 -per 2 -datasets sports -cacheout BENCH_cache.json
//	unify-bench -exp faults -size 400 -per 2 -datasets sports -faultsout BENCH_faults.json
//	unify-bench -exp serve -size 300 -per 2 -datasets sports -serveout BENCH_serve.json
//	unify-bench -exp scale -size 300 -per 2 -datasets sports -scaleout BENCH_scale.json
//	unify-bench -exp scale -machines 2 -queries 4 -size 300 -datasets sports   # CI smoke
//	unify-bench -exp usql -size 400 -per 2 -datasets sports -usqlout BENCH_usql.json
//	unify-bench -exp views -size 400 -per 2 -datasets sports -viewsout BENCH_views.json
//
// Experiments: fig4 (accuracy+latency, Fig. 4a-h), table3 (SCE q-errors,
// Table III), fig5a (logical optimization), fig5b (physical optimization),
// cache (repeated-workload cold/warm latency and per-layer hit rates),
// faults (resilience under seeded fault injection at increasing rates),
// serve (concurrent serving sweep over the shared slot pool),
// scale (cluster-width sweep with shard-aware scatter execution).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"unify/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiments to run: fig4,table3,fig5a,fig5b,cache,faults,serve,batch,scale,usql,views,all")
		size     = flag.Int("size", 0, "corpus size override (0 = paper sizes)")
		per      = flag.Int("per", 5, "query instances per template (paper: 5)")
		datasets = flag.String("datasets", "", "comma-separated dataset subset")
		methods  = flag.String("methods", "", "comma-separated method subset for fig4")
		seed     = flag.Int64("seed", 42, "workload sampling seed")
		jsonOut  = flag.String("json", "", "also write structured results to this JSON file")
		cacheOut = flag.String("cacheout", "", "write the cache experiment's flat report to this JSON file")
		faultOut = flag.String("faultsout", "", "write the faults experiment's report to this JSON file")
		serveOut = flag.String("serveout", "", "write the serve experiment's report to this JSON file")
		batchOut = flag.String("batchout", "", "write the batch experiment's report to this JSON file")
		scaleOut = flag.String("scaleout", "", "write the scale experiment's report to this JSON file")
		usqlOut  = flag.String("usqlout", "", "write the usql experiment's report to this JSON file")
		viewsOut = flag.String("viewsout", "", "write the views experiment's report to this JSON file")
		machines = flag.Int("machines", 0, "scale experiment: max cluster width (0 = the default 1,2,4,8 sweep)")
		nQueries = flag.Int("queries", 0, "scale experiment: cap the per-width query batch (0 = full workload)")
	)
	flag.Parse()

	cfg := bench.Config{Size: *size, PerTemplate: *per, Seed: *seed, MaxQueries: *nQueries}
	if *machines > 0 {
		for m := 1; m <= *machines; m *= 2 {
			cfg.ScaleMachines = append(cfg.ScaleMachines, m)
		}
		if last := cfg.ScaleMachines[len(cfg.ScaleMachines)-1]; last != *machines {
			cfg.ScaleMachines = append(cfg.ScaleMachines, *machines)
		}
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *methods != "" {
		cfg.Methods = strings.Split(*methods, ",")
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	if want["all"] {
		want = map[string]bool{"fig4": true, "table3": true, "fig5a": true, "fig5b": true, "cache": true, "faults": true, "serve": true, "scale": true, "batch": true, "usql": true, "views": true}
	}

	ctx := context.Background()
	artifacts := map[string]interface{}{}
	run := func(name string, f func() error) {
		start := time.Now()
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %.1fs wall time)\n\n", name, time.Since(start).Seconds())
	}

	if want["fig4"] {
		run("Figure 4", func() error {
			rows, err := bench.RunFig4(ctx, cfg)
			if err != nil {
				return err
			}
			bench.PrintFig4(os.Stdout, rows)
			artifacts["fig4"] = rows
			return nil
		})
	}
	if want["table3"] {
		run("Table III", func() error {
			rows, err := bench.RunTable3(ctx, cfg)
			if err != nil {
				return err
			}
			bench.PrintTable3(os.Stdout, rows)
			artifacts["table3"] = rows
			return nil
		})
	}
	if want["fig5a"] {
		run("Figure 5(a)", func() error {
			rows, err := bench.RunFig5a(ctx, cfg)
			if err != nil {
				return err
			}
			bench.PrintFig5(os.Stdout, "Figure 5(a): logical optimization (avg exec latency)", rows)
			artifacts["fig5a"] = rows
			return nil
		})
	}
	if want["fig5b"] {
		run("Figure 5(b)", func() error {
			rows, err := bench.RunFig5b(ctx, cfg)
			if err != nil {
				return err
			}
			bench.PrintFig5(os.Stdout, "Figure 5(b): physical optimization (avg exec latency)", rows)
			artifacts["fig5b"] = rows
			return nil
		})
	}

	if want["cache"] {
		run("Repeated workload (cache)", func() error {
			res, err := bench.RunCacheBench(ctx, cfg)
			if err != nil {
				return err
			}
			bench.PrintCacheBench(os.Stdout, res)
			artifacts["cache"] = res
			if *cacheOut != "" {
				data, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*cacheOut, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("cache report written to %s\n", *cacheOut)
			}
			return nil
		})
	}

	if want["faults"] {
		run("Fault injection (faults)", func() error {
			res, err := bench.RunFaultBench(ctx, cfg)
			if err != nil {
				return err
			}
			bench.PrintFaultBench(os.Stdout, res)
			artifacts["faults"] = res
			if *faultOut != "" {
				data, err := bench.WriteFaultBench(res)
				if err != nil {
					return err
				}
				if err := os.WriteFile(*faultOut, data, 0o644); err != nil {
					return err
				}
				fmt.Printf("faults report written to %s\n", *faultOut)
			}
			return nil
		})
	}

	if want["serve"] {
		run("Concurrent serving (serve)", func() error {
			res, err := bench.RunServeBench(ctx, cfg)
			if err != nil {
				return err
			}
			bench.PrintServeBench(os.Stdout, res)
			artifacts["serve"] = res
			if *serveOut != "" {
				data, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*serveOut, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("serve report written to %s\n", *serveOut)
			}
			return nil
		})
	}

	if want["batch"] {
		run("Continuous batching (batch)", func() error {
			res, err := bench.RunBatchBench(ctx, cfg)
			if err != nil {
				return err
			}
			bench.PrintBatchBench(os.Stdout, res)
			artifacts["batch"] = res
			for _, p := range res.Points {
				if !p.AnswersIdentical {
					return fmt.Errorf("batch: answers at concurrency %d diverge between batching on and off", p.Concurrency)
				}
			}
			if *batchOut != "" {
				data, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*batchOut, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("batch report written to %s\n", *batchOut)
			}
			return nil
		})
	}

	if want["scale"] {
		run("Scale-out (scale)", func() error {
			res, err := bench.RunScaleBench(ctx, cfg)
			if err != nil {
				return err
			}
			bench.PrintScaleBench(os.Stdout, res)
			artifacts["scale"] = res
			for _, p := range res.Points {
				if !p.AnswersMatchM1 {
					return fmt.Errorf("scale: answers at %d machines diverge from the 1-machine run", p.Machines)
				}
			}
			if *scaleOut != "" {
				data, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*scaleOut, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("scale report written to %s\n", *scaleOut)
			}
			return nil
		})
	}

	if want["usql"] {
		run("USQL vs NL planning (usql)", func() error {
			res, err := bench.RunUSQLBench(ctx, cfg)
			if err != nil {
				return err
			}
			bench.PrintUSQLBench(os.Stdout, res)
			artifacts["usql"] = res
			if *usqlOut != "" {
				data, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*usqlOut, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("usql report written to %s\n", *usqlOut)
			}
			return nil
		})
	}

	if want["views"] {
		run("Materialized views across ingest (views)", func() error {
			res, err := bench.RunViewsBench(ctx, cfg)
			if err != nil {
				return err
			}
			bench.PrintViewsBench(os.Stdout, res)
			artifacts["views"] = res
			if *viewsOut != "" {
				data, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*viewsOut, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("views report written to %s\n", *viewsOut)
			}
			return nil
		})
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "json output:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(artifacts); err != nil {
			fmt.Fprintln(os.Stderr, "json encode:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("structured results written to %s\n", *jsonOut)
	}
}
