// Command unify-gen materializes a synthetic corpus to disk for
// inspection: one text file per document plus a TSV of the hidden records
// (the ground-truth side used only by the evaluation harness).
//
// Usage:
//
//	unify-gen -dataset sports -size 100 -out /tmp/sports
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"unify/internal/corpus"
)

func main() {
	var (
		dataset = flag.String("dataset", "sports", "dataset: sports, ai, law, wiki")
		size    = flag.Int("size", 0, "document count (0 = paper size)")
		out     = flag.String("out", "", "output directory (empty = print a sample to stdout)")
		sample  = flag.Int("sample", 3, "documents to print when -out is empty")
	)
	flag.Parse()

	n := *size
	if n == 0 {
		n = corpus.DefaultSize(*dataset)
	}
	ds, err := corpus.GenerateN(*dataset, n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *out == "" {
		for i := 0; i < *sample && i < len(ds.Docs); i++ {
			d := ds.Docs[i]
			fmt.Printf("--- doc %d (hidden: %+v) ---\n%s\n\n", d.ID, d.Hidden, d.Text)
		}
		fmt.Printf("dataset %s: %d documents (entity=%s, category class=%s, aspect class=%s)\n",
			ds.Name, len(ds.Docs), ds.EntityWord, ds.CatClass, ds.AspectClass)
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tsv, err := os.Create(filepath.Join(*out, "hidden.tsv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer tsv.Close()
	fmt.Fprintln(tsv, "id\tcategory\taspect\tviews\tscore\tyear")
	for _, d := range ds.Docs {
		name := filepath.Join(*out, fmt.Sprintf("doc-%05d.txt", d.ID))
		if err := os.WriteFile(name, []byte(d.Text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(tsv, "%d\t%s\t%s\t%d\t%d\t%d\n",
			d.ID, d.Hidden.Category, d.Hidden.Aspect, d.Hidden.Views, d.Hidden.Score, d.Hidden.Year)
	}
	fmt.Printf("wrote %d documents to %s\n", len(ds.Docs), *out)
}
