package unify

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"unify/internal/baselines"
	"unify/internal/check"
	"unify/internal/corpus"
	"unify/internal/faults"
	"unify/internal/llm"
	"unify/internal/obs"
	"unify/internal/optimizer"
	"unify/internal/workload"
)

// The differential/metamorphic harness: the axes registered in
// internal/check.Axes are wired to real system pairs here (check cannot
// import unify). Every axis runs the same seeded workload slice through
// both configurations; exact axes must agree byte-for-byte.

// diffDataset is the harness corpus: small and noise-free so runs are
// fast and bit-for-bit deterministic.
func diffDataset(t *testing.T) *corpus.Dataset {
	t.Helper()
	ds, err := corpus.GenerateN("sports", 150)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// diffSystem opens a strict-checked, noise-free system; mut customizes
// the config for one side of an axis.
func diffSystem(t *testing.T, ds *corpus.Dataset, mut func(*Config)) *System {
	t.Helper()
	sim := llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 1} // zero noise
	cfg := Config{Dataset: "sports", Sim: &sim, StrictChecks: true}
	if mut != nil {
		mut(&cfg)
	}
	sys, err := OpenDataset(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// diffQueries is the seeded workload slice every axis replays.
func diffQueries(ds *corpus.Dataset, n int) []string {
	qs := workload.Generate(ds, 1, 42)
	if n > len(qs) {
		n = len(qs)
	}
	out := make([]string, 0, n)
	for _, q := range qs[:n] {
		out = append(out, q.Text)
	}
	return out
}

// textRunner fingerprints a query by answer text only (for axes where
// virtual latency legitimately shifts, e.g. cache hits).
func textRunner(sys *System) check.Runner {
	return func(ctx context.Context, q string) (string, error) {
		ans, err := sys.Query(ctx, q)
		if err != nil {
			return "", err
		}
		return ans.Text, nil
	}
}

// exactRunner fingerprints answer text plus virtual latency: the axis
// must be invisible to results AND timing.
func exactRunner(sys *System) check.Runner {
	return func(ctx context.Context, q string) (string, error) {
		ans, err := sys.Query(ctx, q)
		if err != nil {
			return "", err
		}
		return ans.Text + " @" + ans.TotalDur.String(), nil
	}
}

func assertNoMismatch(t *testing.T, axis string, ms []check.Mismatch) {
	t.Helper()
	for _, m := range ms {
		t.Errorf("metamorphic violation %s", m)
	}
}

// Axis "cache": a cache hit must change latency only, never the answer.
func TestDifferentialCacheOnOff(t *testing.T) {
	ds := diffDataset(t)
	on := diffSystem(t, ds, nil)
	off := diffSystem(t, ds, func(c *Config) { c.CacheBytes = -1 })
	ms := check.Differential(context.Background(), "cache", diffQueries(ds, 6),
		textRunner(on), textRunner(off))
	assertNoMismatch(t, "cache", ms)
}

// Axis "faults-zero": a fault plan that can never fire (rate 0), plus the
// retry layer it installs, must be a perfect no-op — same answers, same
// virtual latency.
func TestDifferentialZeroFaultRate(t *testing.T) {
	ds := diffDataset(t)
	clean := diffSystem(t, ds, nil)
	zero := diffSystem(t, ds, func(c *Config) {
		c.FaultPlan = faults.Uniform(faults.Transient, 0, 7)
	})
	ms := check.Differential(context.Background(), "faults-zero", diffQueries(ds, 6),
		exactRunner(clean), exactRunner(zero))
	assertNoMismatch(t, "faults-zero", ms)
}

// Axis "pool": a lone query on the shared slot pool must schedule exactly
// as on a private single-query pool (the PR-4 equivalence guarantee).
func TestDifferentialSharedVsSoloPool(t *testing.T) {
	ds := diffDataset(t)
	shared := diffSystem(t, ds, nil)
	solo := diffSystem(t, ds, nil)
	// A nil executor pool selects a fresh private pool per execution; the
	// system-level pool still admits/releases but is never scheduled on.
	solo.Executor.Pool = nil
	ms := check.Differential(context.Background(), "pool", diffQueries(ds, 6),
		exactRunner(shared), exactRunner(solo))
	assertNoMismatch(t, "pool", ms)
}

// Axis "mode-override": per-query WithModeOverride(m) must behave exactly
// like a system opened with Mode m.
func TestDifferentialModeOverride(t *testing.T) {
	ds := diffDataset(t)
	ruleSys := diffSystem(t, ds, func(c *Config) { c.Mode = optimizer.Rule })
	overrideSys := diffSystem(t, ds, nil) // CostBased system, per-query override
	left := exactRunner(ruleSys)
	right := func(ctx context.Context, q string) (string, error) {
		ans, err := overrideSys.Query(ctx, q, WithModeOverride(optimizer.Rule))
		if err != nil {
			return "", err
		}
		return ans.Text + " @" + ans.TotalDur.String(), nil
	}
	ms := check.Differential(context.Background(), "mode-override", diffQueries(ds, 6), left, right)
	assertNoMismatch(t, "mode-override", ms)
}

// Axis "batching" (satellite: batching on/off differential): continuous
// batching coalesces compatible calls across queries into shared
// invocations, but answers are computed live before virtual-time replay —
// so enabling it must never change answer text on the seeded workload
// slice. Run under -race in CI: the batching wrapper and pool policy are
// exercised on the concurrent serving path elsewhere, and this test's
// sequential replay doubles as the data-race canary for the new layers.
func TestDifferentialBatchingOnOff(t *testing.T) {
	ds := diffDataset(t)
	off := diffSystem(t, ds, nil)
	on := diffSystem(t, ds, func(c *Config) { c.Batching = true })
	// exactRunner, not textRunner: sequential queries never co-pend, so
	// cross-query batching must be invisible to virtual latency too.
	ms := check.Differential(context.Background(), "batching", diffQueries(ds, 6),
		exactRunner(off), exactRunner(on))
	assertNoMismatch(t, "batching", ms)
	if got := len(check.Axes); got != 9 {
		t.Fatalf("axis registry has %d axes, expected 9 (batching, usql_vs_nl, or ingest missing?)", got)
	}
}

// Axis "ingest": a corpus grown incrementally (a base prefix at open plus
// an Ingest of the remainder) must be indistinguishable from one built
// statically over the full collection — byte-identical answers AND
// virtual latency. This leans on the docstore guarantee that AddDocs
// appends through the exact indexing sequence New uses (same vectors,
// same HNSW insertion order and RNG stream, same sentence ids).
func TestDifferentialIngest(t *testing.T) {
	full := diffDataset(t)
	static := diffSystem(t, full, nil)

	// The corpus generator is prefix-stable: the first 135 documents of a
	// 150-document corpus are the 135-document corpus.
	base, err := corpus.GenerateN("sports", 135)
	if err != nil {
		t.Fatal(err)
	}
	incr := diffSystem(t, base, nil)
	res, err := incr.Ingest(full.Documents()[135:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != 15 || res.Generation != 1 || res.Docs != 150 {
		t.Fatalf("unexpected ingest result %+v", res)
	}

	ms := check.Differential(context.Background(), "ingest", diffQueries(full, 6),
		exactRunner(static), exactRunner(incr))
	assertNoMismatch(t, "ingest", ms)
}

// Axis "usql_vs_nl": the USQL parser route and the LLM planner route
// are two independent compilers onto the same logical operators, so on
// every workload query that exists in both forms they must produce
// byte-identical answers with identical estimation + execution virtual
// time (planning time legitimately differs: the parsed route has none).
// The USQL side's planner client is wrapped in a recorder BELOW the
// response cache, so the test also proves the parsed route never
// invokes the planner LLM at all — zero planner-task calls, cold or
// warm.
func TestDifferentialUSQLVsNL(t *testing.T) {
	ds := diffDataset(t)
	nl := diffSystem(t, ds, nil)

	sim := llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 1}
	cfg := Config{Dataset: "sports", Sim: &sim, StrictChecks: true}
	pcfg := sim
	pcfg.Profile = llm.PlannerProfile()
	prec := llm.NewRecorder(llm.NewSim(pcfg))
	us, err := New(WithConfig(cfg), WithCorpus(ds), WithClients(prec, llm.NewSim(sim)))
	if err != nil {
		t.Fatal(err)
	}

	toUSQL := map[string]string{}
	var queries []string
	for _, q := range workload.Generate(ds, 1, 42) {
		if q.USQL == "" {
			continue
		}
		queries = append(queries, q.Text)
		toUSQL[q.Text] = q.USQL
	}
	if len(queries) < 10 {
		t.Fatalf("only %d dual-form workload queries, expected at least 10", len(queries))
	}
	// Fingerprint: answer text plus estimation+execution vtime. Left
	// runs the NL text through the planner; right runs the USQL twin
	// through the parser, pinned to LangUSQL so a detection bug cannot
	// silently fall back to the planner.
	fingerprint := func(sys *System, rewrite func(string) string, opts ...QueryOption) check.Runner {
		return func(ctx context.Context, q string) (string, error) {
			ans, err := sys.Query(ctx, rewrite(q), opts...)
			if err != nil {
				return "", err
			}
			return ans.Text + " @" + (ans.EstimationDur + ans.ExecDur).String(), nil
		}
	}
	ms := check.Differential(context.Background(), "usql_vs_nl", queries,
		fingerprint(nl, func(q string) string { return q }),
		fingerprint(us, func(q string) string { return toUSQL[q] }, WithLanguage(LangUSQL)))
	assertNoMismatch(t, "usql_vs_nl", ms)
	if calls := prec.Calls(); len(calls) != 0 {
		t.Fatalf("USQL route made %d planner-LLM calls (first task %q), want 0", len(calls), calls[0].Task)
	}
}

// Axis "optimized-vs-exhaustive": the cost-based optimizer must not give
// up accuracy relative to the exhaustive baseline (the paper's headline
// claim); tolerance is one query on this small slice.
func TestDifferentialOptimizedVsExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive baseline is slow")
	}
	ds := diffDataset(t)
	sys := diffSystem(t, ds, nil)
	ex := baselines.NewExhaust(sys.Store, sys.PlannerClient, sys.WorkerClient)
	queries := workload.Generate(ds, 1, 42)[:6]

	unifyOK, exOK := 0, 0
	for _, q := range queries {
		ans, err := sys.Query(context.Background(), q.Text)
		if err != nil {
			t.Fatalf("unify %s: %v", q.ID, err)
		}
		if workload.Score(q, ans.Text) {
			unifyOK++
		}
		res, err := ex.Run(context.Background(), q.Text)
		if err != nil {
			t.Fatalf("exhaust %s: %v", q.ID, err)
		}
		if workload.Score(q, res.Text) {
			exOK++
		}
	}
	if unifyOK < exOK-1 {
		t.Errorf("optimized accuracy %d/%d fell more than tolerance below exhaustive %d/%d",
			unifyOK, len(queries), exOK, len(queries))
	}
	t.Logf("unify %d/%d correct, exhaustive %d/%d correct", unifyOK, len(queries), exOK, len(queries))
}

// Satellite (nondeterminism sweep): two identical systems replaying the
// same workload slice must agree byte-for-byte — answers, the Prometheus
// exposition, and the stats snapshot JSON. This pins the fixed leaks
// (first-seen label order in /metrics, Snapshot mutating the registry).
func TestRepeatedRunByteIdentity(t *testing.T) {
	ds := diffDataset(t)
	queries := diffQueries(ds, 5)

	run := func() (answers []string, prom []byte, snap []byte, traced []byte) {
		sys := diffSystem(t, ds, nil)
		for _, q := range queries {
			ans, err := sys.Query(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			answers = append(answers, fmt.Sprintf("%s @%s", ans.Text, ans.TotalDur))
		}
		var buf bytes.Buffer
		sys.Metrics.Reg.WritePrometheus(&buf)
		// Reading the snapshot must not change the exposition (regression:
		// Snapshot used to create empty series).
		js, err := json.Marshal(sys.Metrics.Reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var buf2 bytes.Buffer
		sys.Metrics.Reg.WritePrometheus(&buf2)
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("Snapshot changed subsequent /metrics output")
		}
		// The observability surfaces ride the same contract: the retained
		// trace list and the cumulative cost profile are vtime-only and
		// must serialize identically across identical runs.
		tj, err := json.Marshal(sys.Traces.List(obs.TraceFilter{}))
		if err != nil {
			t.Fatal(err)
		}
		pj, err := json.Marshal(sys.Profiler.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return answers, buf.Bytes(), js, append(append(tj, '\n'), pj...)
	}

	a1, p1, s1, t1 := run()
	a2, p2, s2, t2 := run()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Errorf("answer %d differs between identical runs:\n  run1: %s\n  run2: %s", i, a1[i], a2[i])
		}
	}
	if !bytes.Equal(p1, p2) {
		t.Error("Prometheus exposition differs between identical runs")
	}
	if !bytes.Equal(s1, s2) {
		t.Error("stats snapshot JSON differs between identical runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("trace list / cost profile JSON differs between identical runs")
	}
	if bytes.Contains(t1, []byte("wall")) {
		t.Error("trace/profile JSON leaks wall-clock fields")
	}
}
