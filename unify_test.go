package unify

import (
	"context"
	"math"
	"strconv"
	"strings"
	"testing"

	"unify/internal/corpus"
	"unify/internal/lexicon"
	"unify/internal/llm"
	"unify/internal/nlcond"
	"unify/internal/values"
	"unify/internal/workload"
)

// openSmall builds a small, noise-free sports system for deterministic
// integration tests.
func openSmall(t *testing.T, n int) (*System, *corpus.Dataset) {
	t.Helper()
	ds, err := corpus.GenerateN("sports", n)
	if err != nil {
		t.Fatal(err)
	}
	sim := llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 1} // zero noise
	sys, err := OpenDataset(ds, Config{Dataset: "sports", Sim: &sim, StrictChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	return sys, ds
}

// judgeTruth computes what a perfect semantic filter would return, using
// the same lexicon comprehension the judge has (no noise).
func judgeTruth(ds *corpus.Dataset, pred func(d corpus.Doc) bool) int {
	n := 0
	for _, d := range ds.Docs {
		if pred(d) {
			n++
		}
	}
	return n
}

func TestQueryCountFilter(t *testing.T) {
	sys, ds := openSmall(t, 300)
	ctx := context.Background()
	ans, err := sys.Query(ctx, "How many questions about football have more than 500 views?")
	if err != nil {
		t.Fatal(err)
	}
	got, err := strconv.ParseFloat(ans.Text, 64)
	if err != nil {
		t.Fatalf("non-numeric answer %q (plan: %s)", ans.Text, ans.Plan)
	}
	cond, _ := nlcond.Parse("related to football")
	want := judgeTruth(ds, func(d corpus.Doc) bool {
		return d.Hidden.Views > 500 && cond.EvalSemantic(d.Text)
	})
	// The semantic judge reads text, so small deviations from the
	// lexicon-evaluated truth are possible but should be tiny.
	if math.Abs(got-float64(want)) > math.Max(2, 0.1*float64(want)) {
		t.Errorf("answer %v, want ~%d\nplan: %s", got, want, ans.Plan)
	}
	if ans.Fallback {
		t.Errorf("used fallback for a decomposable query\nplan: %s", ans.Plan)
	}
	if ans.TotalDur <= 0 || ans.ExecDur <= 0 {
		t.Errorf("missing latency accounting: %+v", ans)
	}
}

func TestQueryAverage(t *testing.T) {
	sys, ds := openSmall(t, 300)
	ans, err := sys.Query(context.Background(), "What is the average score of questions related to injury?")
	if err != nil {
		t.Fatal(err)
	}
	got, err := strconv.ParseFloat(ans.Text, 64)
	if err != nil {
		t.Fatalf("non-numeric answer %q (plan: %s)", ans.Text, ans.Plan)
	}
	cond, _ := nlcond.Parse("related to injury")
	sum, n := 0.0, 0
	for _, d := range ds.Docs {
		if cond.EvalSemantic(d.Text) {
			sum += float64(d.Hidden.Score)
			n++
		}
	}
	want := sum / float64(n)
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("answer %v, want ~%v\nplan: %s", got, want, ans.Plan)
	}
}

func TestQueryRunningExample(t *testing.T) {
	sys, ds := openSmall(t, 400)
	q := "Among questions with over 200 views, which sport has the highest ratio of number of questions related to injury to number of questions related to training?"
	ans, err := sys.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Fallback {
		t.Fatalf("running example fell back to Generate\nplan: %s", ans.Plan)
	}
	counts := ans.Plan.OpCounts()
	for _, op := range []string{"GroupBy", "Count", "Compute"} {
		if counts[op] == 0 {
			t.Errorf("plan missing %s: %v\nplan: %s", op, counts, ans.Plan)
		}
	}
	if counts["GroupBy"] != 1 {
		t.Errorf("grouping should be shared once, got %d", counts["GroupBy"])
	}
	// Compute the lexicon-truth argmax for comparison.
	inj, _ := nlcond.Parse("related to injury")
	trn, _ := nlcond.Parse("related to training")
	ratio := map[string][2]int{}
	for _, d := range ds.Docs {
		if d.Hidden.Views <= 200 {
			continue
		}
		sport := lexicon.BestConcept(d.Text, "sport")
		if sport == "" {
			continue
		}
		c := ratio[sport]
		if inj.EvalSemantic(d.Text) {
			c[0]++
		}
		if trn.EvalSemantic(d.Text) {
			c[1]++
		}
		ratio[sport] = c
	}
	best, bestR := "", -1.0
	for s, c := range ratio {
		if c[1] == 0 {
			continue
		}
		r := float64(c[0]) / float64(c[1])
		if r > bestR || (r == bestR && s < best) {
			best, bestR = s, r
		}
	}
	if ans.Text != best {
		t.Logf("answer %q vs lexicon-truth %q (ratios %v) — may differ due to judgment ties\nplan: %s",
			ans.Text, best, ratio, ans.Plan)
	}
	if ans.Text == "" || ans.Text == "unknown" {
		t.Errorf("no meaningful answer: %q\nplan: %s", ans.Text, ans.Plan)
	}
	// DAG parallelism: the two count branches must not be serialized.
	if ans.SerialExecDur <= ans.ExecDur {
		t.Errorf("parallel exec (%v) not faster than serial (%v)", ans.ExecDur, ans.SerialExecDur)
	}
}

func TestQueryTopK(t *testing.T) {
	sys, ds := openSmall(t, 300)
	ans, err := sys.Query(context.Background(), "List the top 3 most viewed questions about tennis.")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Fallback {
		t.Fatalf("fallback used\nplan: %s", ans.Plan)
	}
	_ = ds
	if ans.Text == "" {
		t.Errorf("empty answer\nplan: %s", ans.Plan)
	}
}

func TestQueryCompare(t *testing.T) {
	sys, ds := openSmall(t, 300)
	ans, err := sys.Query(context.Background(), "Are there more questions related to injury or questions related to training?")
	if err != nil {
		t.Fatal(err)
	}
	inj, _ := nlcond.Parse("related to injury")
	trn, _ := nlcond.Parse("related to training")
	ni := judgeTruth(ds, func(d corpus.Doc) bool { return inj.EvalSemantic(d.Text) })
	nt := judgeTruth(ds, func(d corpus.Doc) bool { return trn.EvalSemantic(d.Text) })
	want := "first"
	if nt > ni {
		want = "second"
	}
	if ans.Text != want {
		t.Errorf("answer %q, want %q (injury=%d training=%d)\nplan: %s", ans.Text, want, ni, nt, ans.Plan)
	}
}

func TestIndexFilterChosenForSelectiveScan(t *testing.T) {
	sys, _ := openSmall(t, 400)
	ans, err := sys.Query(context.Background(), "How many questions about golf have more than 100 views?")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plan: %s", ans.Plan)
	// At least the structured views-filter should have been ordered to
	// run with a pre-programmed implementation.
	foundExact := false
	for _, n := range ans.Plan.Nodes {
		if n.Phys == "ExactFilter" {
			foundExact = true
		}
	}
	if !foundExact {
		t.Errorf("expected a pre-programmed ExactFilter in the plan: %s", ans.Plan)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.defaults()
	if c.K != 5 || c.NC != 3 || c.Tau != 0.75 || c.Slots != 4 {
		t.Errorf("defaults = %+v, want the paper's hyper-parameters", c)
	}
}

func TestGenerateFallbackAnswersOutOfGrammar(t *testing.T) {
	sys, _ := openSmall(t, 200)
	ans, err := sys.Query(context.Background(), "Please summarize the overall vibe of this community.")
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Fallback {
		t.Error("out-of-grammar query should use the Generate fallback")
	}
	if ans.Plan.Root().Op != "Generate" {
		t.Errorf("fallback root = %s", ans.Plan.Root().Op)
	}
}

func TestFormatValueResolvesTitles(t *testing.T) {
	sys, ds := openSmall(t, 50)
	v := values.NewDocs([]int{0, 1})
	got := sys.FormatValue(v)
	if !strings.Contains(got, ds.Docs[0].Title) || !strings.Contains(got, ds.Docs[1].Title) {
		t.Errorf("FormatValue = %q", got)
	}
}

func TestOpenWithCustomClients(t *testing.T) {
	ds, err := corpus.GenerateN("sports", 150)
	if err != nil {
		t.Fatal(err)
	}
	cfg := llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 99}
	pcfg := llm.SimConfig{Profile: llm.PlannerProfile(), Seed: 99}
	sys, err := OpenWithClients(ds, Config{Dataset: "sports"}, llm.NewSim(pcfg), llm.NewSim(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := sys.Query(context.Background(), "How many questions are about tennis?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strconv.ParseFloat(ans.Text, 64); err != nil {
		t.Errorf("answer %q not numeric", ans.Text)
	}
}

func TestQueryDeterministic(t *testing.T) {
	sysA, _ := openSmall(t, 250)
	sysB, _ := openSmall(t, 250)
	q := "What is the total number of views across questions about tennis?"
	a, errA := sysA.Query(context.Background(), q)
	b, errB := sysB.Query(context.Background(), q)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a.Text != b.Text || a.TotalDur != b.TotalDur {
		t.Errorf("non-deterministic: %q/%v vs %q/%v", a.Text, a.TotalDur, b.Text, b.TotalDur)
	}
}

func TestAllDatasetsEndToEnd(t *testing.T) {
	queries := map[string]string{
		"ai":   "How many questions about nlp have more than 200 views?",
		"law":  "What is the average score of questions related to liability?",
		"wiki": "How many articles about technology were posted before 2018?",
	}
	for name, q := range queries {
		ds, err := corpus.GenerateN(name, 250)
		if err != nil {
			t.Fatal(err)
		}
		sim := llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 1}
		sys, err := OpenDataset(ds, Config{Dataset: name, Sim: &sim})
		if err != nil {
			t.Fatal(err)
		}
		ans, err := sys.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ans.Fallback {
			t.Errorf("%s: fell back on a decomposable query\nplan: %s", name, ans.Plan)
		}
		if _, err := strconv.ParseFloat(ans.Text, 64); err != nil {
			t.Errorf("%s: answer %q not numeric", name, ans.Text)
		}
	}
}

func TestQueryYearRange(t *testing.T) {
	sys, ds := openSmall(t, 300)
	ans, err := sys.Query(context.Background(), "How many questions about football were posted between 2012 and 2018?")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Fallback {
		t.Fatalf("range query fell back\nplan: %s", ans.Plan)
	}
	cond, _ := nlcond.Parse("related to football")
	want := judgeTruth(ds, func(d corpus.Doc) bool {
		return d.Hidden.Year >= 2012 && d.Hidden.Year <= 2018 && cond.EvalSemantic(d.Text)
	})
	got, err := strconv.ParseFloat(ans.Text, 64)
	if err != nil || math.Abs(got-float64(want)) > math.Max(2, 0.1*float64(want)) {
		t.Errorf("answer %q, want ~%d\nplan: %s", ans.Text, want, ans.Plan)
	}
}

func TestQueryFullSort(t *testing.T) {
	sys, ds := openSmall(t, 200)
	ans, err := sys.Query(context.Background(), "Sort the questions about golf by views in descending order.")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Fallback {
		t.Fatalf("sort query fell back\nplan: %s", ans.Plan)
	}
	if ans.Value.Kind != values.Docs || ans.Value.Len() == 0 {
		t.Fatalf("sort answer kind %v len %d", ans.Value.Kind, ans.Value.Len())
	}
	// The returned order must be non-increasing in views.
	prev := 1 << 60
	for _, id := range ans.Value.DocIDs {
		v := ds.Docs[id].Hidden.Views
		if v > prev {
			t.Fatalf("sort order violated at doc %d (%d > %d)", id, v, prev)
		}
		prev = v
	}
	hasOrderBy := false
	for _, n := range ans.Plan.Nodes {
		if n.Op == "OrderBy" {
			hasOrderBy = true
		}
	}
	if !hasOrderBy {
		t.Errorf("plan missing OrderBy: %s", ans.Plan)
	}
}

// TestWorkloadAccuracyRegression guards the headline property at reduced
// scale: Unify answers the large majority of the 20-template workload
// correctly and almost never needs the Generate fallback.
func TestWorkloadAccuracyRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload run")
	}
	ds, err := corpus.GenerateN("sports", 500)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := OpenDataset(ds, Config{Dataset: "sports", TrainSCE: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.Generate(ds, 1, 42)
	correct, fallbacks := 0, 0
	for _, q := range queries {
		ans, err := sys.Query(context.Background(), q.Text)
		if err != nil {
			t.Errorf("%s: %v", q.ID, err)
			continue
		}
		if workload.Score(q, ans.Text) {
			correct++
		}
		if ans.Fallback {
			fallbacks++
		}
	}
	acc := float64(correct) / float64(len(queries))
	if acc < 0.6 {
		t.Errorf("workload accuracy %.2f below the regression floor", acc)
	}
	if fallbacks > len(queries)/5 {
		t.Errorf("%d/%d queries fell back to Generate", fallbacks, len(queries))
	}
	t.Logf("accuracy %.0f%%, %d fallbacks over %d queries", 100*acc, fallbacks, len(queries))
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(Config{Dataset: "nonexistent"}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestOpenPaperDefaultsSmall(t *testing.T) {
	sys, err := Open(Config{Dataset: "wiki", Size: 120})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Store.Len() != 120 {
		t.Errorf("store has %d docs", sys.Store.Len())
	}
	if sys.Dataset.EntityWord != "articles" {
		t.Errorf("wiki entity = %q", sys.Dataset.EntityWord)
	}
}

func TestTrainSCEPreprocessAccounted(t *testing.T) {
	ds, _ := corpus.GenerateN("sports", 150)
	sys, err := OpenDataset(ds, Config{Dataset: "sports", TrainSCE: true})
	if err != nil {
		t.Fatal(err)
	}
	if sys.PreprocessDur <= 0 {
		t.Error("SCE training not accounted in preprocessing")
	}
	f := sys.Estimator.Importance()
	if f[0] <= f[len(f)-1] {
		t.Errorf("importance not trained: %v", f)
	}
}

func TestPlanExplain(t *testing.T) {
	sys, _ := openSmall(t, 200)
	plan, dur, err := sys.Plan(context.Background(), "How many questions are about golf?")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Nodes) == 0 || dur <= 0 {
		t.Errorf("Plan returned %d nodes, %v", len(plan.Nodes), dur)
	}
	for _, n := range plan.Nodes {
		if n.Phys == "" {
			t.Errorf("EXPLAIN output missing physical for node %d", n.ID)
		}
	}
}

func TestQueryContextCancellation(t *testing.T) {
	sys, _ := openSmall(t, 150)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Query(ctx, "How many questions are about golf?"); err == nil {
		t.Error("cancelled context not honored")
	}
}

func TestAnswerNodeStats(t *testing.T) {
	sys, _ := openSmall(t, 200)
	ans, err := sys.Query(context.Background(), "How many questions are about tennis?")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Nodes) != len(ans.Plan.Nodes) {
		t.Fatalf("stats for %d of %d nodes", len(ans.Nodes), len(ans.Plan.Nodes))
	}
	for _, ns := range ans.Nodes {
		if ns.Op == "" || ns.Physical == "" {
			t.Errorf("incomplete stat %+v", ns)
		}
	}
	// The filter node must report a shrink from input to output.
	var filter NodeStat
	for _, ns := range ans.Nodes {
		if ns.Op == "Filter" || ns.Op == "Scan" {
			filter = ns
		}
	}
	if filter.InCard == 0 || filter.OutCard > filter.InCard {
		t.Errorf("filter stat implausible: %+v", filter)
	}
}
