// Sports analytics: the paper's running example (§I) — a multi-step
// aggregation over grouped, filtered documents — plus a look inside the
// generated plan: the DAG structure, the shared GroupBy, and the physical
// implementation the optimizer chose for each operator.
//
//	go run ./examples/sports-analytics
package main

import (
	"context"
	"fmt"
	"log"

	"unify"
)

func main() {
	sys, err := unify.Open(unify.Config{Dataset: "sports", Size: 1200, TrainSCE: true})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The running example of the paper's introduction.
	q := "Among questions with over 500 views, which sport has the highest ratio of " +
		"number of questions related to injury to number of questions related to training?"
	ans, err := sys.Query(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q: %s\n\nA: %s\n\n", q, ans.Text)

	fmt.Println("The optimized physical plan (a DAG — the two count branches run in parallel):")
	fmt.Print(ans.Plan)

	levels := ans.Plan.Levels()
	maxLvl := 0
	for _, l := range levels {
		if l > maxLvl {
			maxLvl = l
		}
	}
	fmt.Printf("\nplan depth %d over %d operators; parallel speedup: sequential %.1fs vs DAG %.1fs\n",
		maxLvl+1, len(ans.Plan.Nodes), ans.SerialExecDur.Seconds(), ans.ExecDur.Seconds())
	fmt.Printf("cost breakdown: planning %.1fs, cardinality estimation %.1fs, execution %.1fs\n",
		ans.PlanningDur.Seconds(), ans.EstimationDur.Seconds(), ans.ExecDur.Seconds())

	// A semantic-subset query: the group labels themselves are filtered
	// by a semantic predicate ("sports involving a ball").
	q2 := "Among sports involving a ball, which one has the most questions related to injury?"
	ans2, err := sys.Query(ctx, q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ: %s\nA: %s\n", q2, ans2.Text)
}
