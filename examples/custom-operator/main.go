// Custom operator: the paper's extensibility hook (§IV-B3) — "additional
// operators can easily be added by defining their logical representations
// for planning and physical implementations for execution."
//
// This example registers a WordCount operator with a pre-programmed and an
// LLM-based implementation, then executes a hand-written physical plan
// that uses it next to the built-in Filter.
//
//	go run ./examples/custom-operator
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"unify"
	"unify/internal/core"
	"unify/internal/ops"
	"unify/internal/values"
)

func main() {
	err := ops.Register(&ops.Spec{
		Name: "WordCount",
		LRs:  []string{"the number of words in [Entity]"},
		Phys: []*ops.Physical{
			{
				Name: "PreWordCount",
				Adequate: func(_ ops.Args, inputs []values.Value) bool {
					return len(inputs) >= 1 && inputs[0].Kind == values.Docs
				},
				Run: func(_ context.Context, env *ops.Env, _ ops.Args, inputs []values.Value) (values.Value, error) {
					total := 0
					for _, id := range inputs[0].DocIDs {
						d, ok := env.Store.Doc(id)
						if !ok {
							return values.Value{}, fmt.Errorf("unknown document %d", id)
						}
						total += len(strings.Fields(d.Text))
					}
					return values.NewNum(float64(total)), nil
				},
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	sys, err := unify.Open(unify.Config{Dataset: "sports", Size: 400})
	if err != nil {
		log.Fatal(err)
	}

	// A hand-written plan: filter injuries semantically, then apply the
	// custom operator. (The planner can also match a registered operator
	// once its logical representations are taught to the planning model's
	// comprehension — with a real LLM backend that happens for free.)
	plan := &core.Plan{
		Query: "the number of words in questions related to injury",
		Nodes: []*core.Node{
			{
				ID: 0, Op: "Filter", Phys: "SemanticFilter",
				Args:   ops.Args{"Entity": "questions", "Condition": "related to injury"},
				Inputs: []string{"dataset"}, OutVar: "v1", Desc: "injury questions",
			},
			{
				ID: 1, Op: "WordCount", Phys: "PreWordCount",
				Args:   ops.Args{"Entity": "{v1}"},
				Inputs: []string{"{v1}"}, OutVar: "v2", Deps: []int{0},
				Desc: "word volume of injury questions",
			},
		},
	}
	res, err := sys.Executor.Run(context.Background(), plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total words across injury-related questions: %s\n", res.Answer.String())
	fmt.Printf("(simulated execution %.1fs, %d LLM calls — WordCount itself is pre-programmed and free)\n",
		res.Makespan.Seconds(), res.LLMCalls)
}
