// Quickstart: open a Unify system over the Sports corpus and run a few
// natural-language analytics queries end to end.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"unify"
)

func main() {
	// A reduced corpus keeps the example instant; drop Size for the
	// paper's 3,898 documents.
	sys, err := unify.Open(unify.Config{Dataset: "sports", Size: 800, TrainSCE: true})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	queries := []string{
		"How many questions about football have more than 500 views?",
		"What is the average score of questions related to injury?",
		"List the top 3 most viewed questions about tennis.",
	}
	for _, q := range queries {
		ans, err := sys.Query(ctx, q)
		if err != nil {
			log.Fatalf("%q: %v", q, err)
		}
		fmt.Printf("Q: %s\nA: %s\n   (simulated latency %.1fs over %d LLM calls; plan: %d operators)\n\n",
			q, ans.Text, ans.TotalDur.Seconds(), ans.LLMCalls, len(ans.Plan.Nodes))
	}
}
