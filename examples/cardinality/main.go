// Cardinality: a close-up of semantic cardinality estimation (§VI-B) —
// compare uniform, stratified, adaptive, and Unify's learned importance
// sampling on real predicates, against full-evaluation ground truth.
//
//	go run ./examples/cardinality
package main

import (
	"context"
	"fmt"
	"log"

	"unify"
	"unify/internal/sce"
)

func main() {
	sys, err := unify.Open(unify.Config{Dataset: "sports", Size: 1500, TrainSCE: true})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	est := sys.Estimator

	preds := []string{
		"related to football",
		"related to injury",
		"related to golf",
		"involving a ball",
	}
	ns := sys.Store.Len() / 100 // the paper's 1% sample budget

	fmt.Printf("sample budget: %d of %d documents (1%%)\n", ns, sys.Store.Len())
	fmt.Printf("learned importance function: %v\n\n", fmtF(est.Importance()))
	fmt.Printf("%-22s %8s %10s %10s %10s %10s\n", "predicate", "truth", "uniform", "stratified", "ais", "unify")
	for _, p := range preds {
		truth, err := est.TrueCardinality(ctx, p, 16)
		if err != nil {
			log.Fatal(err)
		}
		row := fmt.Sprintf("%-22s %8d", p, truth)
		for _, m := range []sce.Method{sce.Uniform, sce.Stratified, sce.AIS, sce.Unify} {
			e, _, err := est.Estimate(ctx, m, p, ns)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %10.0f", e)
		}
		fmt.Println(row)
	}
	fmt.Println("\nq-error = max(est/truth, truth/est); Unify's importance function")
	fmt.Println("concentrates samples near the predicate embedding, where satisfied")
	fmt.Println("documents live, so small budgets already estimate well.")
}

func fmtF(f []float64) []string {
	out := make([]string, len(f))
	for i, v := range f {
		out[i] = fmt.Sprintf("%.2f", v)
	}
	return out
}
