// Law review: analytics over the Law Stack Exchange–style corpus,
// demonstrating set operations, comparisons, and year filters, plus the
// Generate (RAG) fallback on an out-of-grammar question.
//
//	go run ./examples/law-review
package main

import (
	"context"
	"fmt"
	"log"

	"unify"
)

func main() {
	sys, err := unify.Open(unify.Config{Dataset: "law", Size: 800, TrainSCE: true})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	queries := []string{
		"How many questions are about contract or about criminal?",
		"Are there more questions related to liability or questions related to procedure?",
		"How many questions about employment were posted before 2018?",
		"Which areas appear both among questions with over 300 views and among questions related to evidence?",
		"Among areas involving money, which one has the most questions related to liability?",
	}
	for _, q := range queries {
		ans, err := sys.Query(ctx, q)
		if err != nil {
			log.Fatalf("%q: %v", q, err)
		}
		mode := "decomposed plan"
		if ans.Fallback {
			mode = "Generate fallback"
		}
		fmt.Printf("Q: %s\nA: %s   [%s, %d ops, %.1fs]\n\n", q, ans.Text, mode, len(ans.Plan.Nodes), ans.TotalDur.Seconds())
	}

	// A question outside the operator grammar exercises the paper's
	// error handling: the planner appends a Generate operator and
	// answers RAG-style.
	odd := "Please write a short poem summarizing the corpus."
	ans, err := sys.Query(ctx, odd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q: %s\nA: %q   [fallback=%v]\n", odd, ans.Text, ans.Fallback)
}
