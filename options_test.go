package unify

import (
	"context"
	"errors"
	"testing"
	"time"

	"unify/internal/corpus"
	"unify/internal/llm"
	"unify/internal/optimizer"
)

// TestNewMatchesOpenDataset verifies the functional constructor builds a
// system equivalent to the deprecated positional one: same answer text
// for the same query on the same corpus and simulator seed.
func TestNewMatchesOpenDataset(t *testing.T) {
	ds, err := corpus.GenerateN("sports", 150)
	if err != nil {
		t.Fatal(err)
	}
	sim := llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 1}

	legacy, err := OpenDataset(ds, Config{Dataset: "sports", Sim: &sim})
	if err != nil {
		t.Fatal(err)
	}
	modern, err := New(WithCorpus(ds), WithDataset("sports"), WithSim(sim))
	if err != nil {
		t.Fatal(err)
	}
	if modern.Config.Slots != legacy.Config.Slots || modern.Config.Dataset != legacy.Config.Dataset {
		t.Fatalf("configs diverge: %+v vs %+v", modern.Config, legacy.Config)
	}

	const q = "How many questions are about tennis?"
	a1, err := legacy.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := modern.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Text != a2.Text {
		t.Errorf("New answer %q != OpenDataset answer %q", a2.Text, a1.Text)
	}
}

// TestNewOptionOverrides checks that individual options land in Config.
func TestNewOptionOverrides(t *testing.T) {
	sys, err := New(
		WithDataset("sports"),
		WithSize(120),
		WithSlots(2),
		WithBatchSize(7),
		WithMode(optimizer.Rule),
		WithCacheBytes(-1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Config.Slots != 2 || sys.Config.BatchSize != 7 || sys.Config.Mode != optimizer.Rule {
		t.Fatalf("options not applied: %+v", sys.Config)
	}
	if sys.Pool.Slots() != 2 {
		t.Fatalf("pool slots = %d, want the configured 2", sys.Pool.Slots())
	}
	if sys.Store.Len() != 120 {
		t.Fatalf("corpus size = %d, want 120", sys.Store.Len())
	}
}

// TestQueryWithTimeout verifies per-query deadlines fire.
func TestQueryWithTimeout(t *testing.T) {
	sys, _ := openSmall(t, 120)
	_, err := sys.Query(context.Background(),
		"How many questions are about tennis?", WithTimeout(time.Nanosecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// A generous deadline must not interfere.
	if _, err := sys.Query(context.Background(),
		"How many questions are about tennis?", WithTimeout(time.Minute)); err != nil {
		t.Fatalf("query with ample timeout failed: %v", err)
	}
}

// TestQueryModeOverride verifies a per-query optimizer override applies
// without mutating the system's shared optimizer.
func TestQueryModeOverride(t *testing.T) {
	sys, _ := openSmall(t, 150)
	before := sys.Optimizer.Mode

	const q = "How many questions are about golf?"
	base, err := sys.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	over, err := sys.Query(context.Background(), q, WithModeOverride(optimizer.Rule))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Optimizer.Mode != before {
		t.Fatalf("override mutated the shared optimizer: %v -> %v", before, sys.Optimizer.Mode)
	}
	// Deterministic judge: strategy changes the plan, not the answer.
	if base.Text != over.Text {
		t.Errorf("rule-mode answer %q != cost-based answer %q", over.Text, base.Text)
	}
	// And the override must not stick for later queries.
	again, err := sys.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if again.Text != base.Text {
		t.Errorf("answer after override %q != before %q", again.Text, base.Text)
	}
}

// TestQueryAnalyzeOption verifies WithAnalyze captures a span tree even
// when the caller installed no tracer.
func TestQueryAnalyzeOption(t *testing.T) {
	sys, _ := openSmall(t, 120)
	ans, err := sys.Query(context.Background(),
		"How many questions are about tennis?", WithAnalyze())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Trace == nil {
		t.Fatal("WithAnalyze returned no trace")
	}
}

// TestPlanWithOptions verifies Plan accepts the same variadic options.
func TestPlanWithOptions(t *testing.T) {
	sys, _ := openSmall(t, 120)
	plan, _, err := sys.Plan(context.Background(),
		"How many questions are about tennis?", WithModeOverride(optimizer.Rule))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Nodes) == 0 {
		t.Fatal("empty plan")
	}
	if _, _, err := sys.Plan(context.Background(), "How many questions are about tennis?"); err != nil {
		t.Fatalf("two-argument Plan regressed: %v", err)
	}
}
