package unify

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"unify/internal/vtime"
	"unify/internal/workload"
)

// seedBatchTasks is the fixed multi-query scenario behind the batch
// replay golden: two heavy scans on different compatibility keys plus
// three light probes, co-pending on a 2-slot machine. It exercises
// cross-job coalescing, key separation, hold-the-door joins, sequential
// lockstep re-batching, and payload singleflight: the filter queries
// scan the same corpus chunks (chunk-indexed payload keys), so lockstep
// invocations prefill each chunk once, while the probe_f2 chain's
// second unit carries a private payload and pays its own way.
func seedBatchTasks() []vtime.Task {
	mk := func(key, payloadKey string, payload, decode time.Duration) vtime.Unit {
		base := 80 * time.Millisecond
		tmpl := 30 * time.Millisecond
		return vtime.Unit{
			Dur:      base + tmpl + payload + decode,
			Resource: vtime.ResourceLLM,
			Batch: &vtime.BatchSpec{
				Key: key, Base: base, Decode: decode,
				TemplatePrefill: tmpl, PayloadPrefill: payload,
				PayloadKey: payloadKey,
			},
		}
	}
	chain := func(id string, job, n int, key, pkPrefix string, payload, decode time.Duration) vtime.Task {
		units := make([]vtime.Unit, n)
		for i := range units {
			pk := ""
			if pkPrefix != "" {
				pk = fmt.Sprintf("%s%d", pkPrefix, i)
			}
			units[i] = mk(key, pk, payload, decode)
		}
		return vtime.Task{ID: id, Job: job, Units: units, Sequential: true}
	}
	fkey := "filter|sim-llama-8b|condition,docs"
	ckey := "classify|sim-llama-8b|classes,docs"
	tasks := []vtime.Task{
		chain("scan_f", 0, 4, fkey, "fchunk", 120*time.Millisecond, 200*time.Millisecond),
		chain("scan_c", 1, 3, ckey, "cchunk", 90*time.Millisecond, 260*time.Millisecond),
		chain("probe_f1", 2, 1, fkey, "fchunk", 120*time.Millisecond, 180*time.Millisecond),
		chain("probe_f2", 3, 2, fkey, "fchunk", 120*time.Millisecond, 220*time.Millisecond),
		chain("probe_c", 4, 1, ckey, "cchunk", 90*time.Millisecond, 240*time.Millisecond),
	}
	// probe_f2's second chunk diverges from the shared scan (a filtered
	// subset): unique payload, charged in full even inside a batch.
	tasks[3].Units[1].Batch.PayloadKey = "subset"
	tasks[3].Units[1].Batch.PayloadPrefill = 80 * time.Millisecond
	tasks[3].Units[1].Dur = (80 + 30 + 80 + 220) * time.Millisecond
	return tasks
}

// formatBatchReplay renders a batched schedule result in the golden
// format: one G line per grant (in grant order), one M line per member
// (leader first), one J line per job (sorted), all virtual times in
// nanoseconds so the file is bit-exact.
func formatBatchReplay(res vtime.Result) string {
	var b strings.Builder
	for i, g := range res.Batches {
		fmt.Fprintf(&b, "G\t%d\t%s\t%s\t%d\t%d\t%d\n", i, g.Resource, g.Key, g.GrantAt, g.Start, g.Dur)
		for _, m := range g.Members {
			fmt.Fprintf(&b, "M\t%d\t%s\t%d\t%d\t%d\t%d\t%d\n", i, m.Task, m.Job, m.Ready, m.Wait, m.Solo, m.Share)
		}
	}
	jobs := make([]int, 0, len(res.JobEnd))
	for j := range res.JobEnd {
		jobs = append(jobs, j)
	}
	sort.Ints(jobs)
	for _, j := range jobs {
		fmt.Fprintf(&b, "J\t%d\t%d\t%d\t%d\t%d\n", j, res.JobEnd[j], res.JobBusy[j], res.JobWait[j], res.JobGrants[j])
	}
	return b.String()
}

// TestBatchReplayGolden pins batch formation to a checked-in golden:
// composition, grant order, starts, durations, waits, and shares of
// every invocation in the seed scenario must stay bit-for-bit stable,
// and the same schedule replayed with batching disabled must not record
// any grants. Regenerate with UPDATE_GOLDENS=1 go test -run BatchReplay.
func TestBatchReplayGolden(t *testing.T) {
	s := vtime.NewSchedule(2)
	s.Batching = &vtime.BatchPolicy{
		Window:      DefaultBatchWindow,
		FairnessCap: DefaultBatchFairnessCap,
		MaxBatch:    DefaultMaxBatch,
	}
	res, err := s.Run(seedBatchTasks())
	if err != nil {
		t.Fatal(err)
	}
	got := formatBatchReplay(res)

	multi := 0
	for _, g := range res.Batches {
		if len(g.Members) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("seed scenario formed no multi-member batches")
	}

	const golden = "testdata/seed_batch_grants.tsv"
	if os.Getenv("UPDATE_GOLDENS") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("batch replay diverged from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Replay determinism, independent of the golden file.
	s2 := vtime.NewSchedule(2)
	s2.Batching = &vtime.BatchPolicy{
		Window:      DefaultBatchWindow,
		FairnessCap: DefaultBatchFairnessCap,
		MaxBatch:    DefaultMaxBatch,
	}
	res2, err := s2.Run(seedBatchTasks())
	if err != nil {
		t.Fatal(err)
	}
	if again := formatBatchReplay(res2); again != got {
		t.Errorf("batched schedule not replay-stable:\n%s\nvs\n%s", got, again)
	}

	// Batching off: no grants recorded, schedule untouched by the feature.
	off := vtime.NewSchedule(2)
	ores, err := off.Run(seedBatchTasks())
	if err != nil {
		t.Fatal(err)
	}
	if len(ores.Batches) != 0 {
		t.Errorf("batching-off run recorded %d grants", len(ores.Batches))
	}
	if ores.Makespan < res.Makespan {
		t.Errorf("batching slowed the schedule down: on=%v off=%v", res.Makespan, ores.Makespan)
	}
}

// TestBatchingOnSequentialMatchesSeedAnswers asserts the batching-off
// default's strongest compatibility bar from the other side: with
// batching ON, a sequential run of the seed workload — where queries
// never co-pend, so cross-query batching finds no partners — produces
// answer lines byte-identical to the pre-batching seed golden.
func TestBatchingOnSequentialMatchesSeedAnswers(t *testing.T) {
	sys, err := New(
		WithDataset("sports"),
		WithSize(300),
		WithTrainSCE(),
		WithStrictChecks(),
		WithMachines(1),
		WithBatching(),
	)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(runClusterWorkload(t, sys), "\n") + "\n"
	want, err := os.ReadFile("testdata/seed_m1_answers.tsv")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("batching-on sequential answers diverged from seed golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
	ps := sys.Pool.Stats()
	if ps.BatchGrants == 0 {
		t.Fatal("batchable calls never passed through the batch grant path")
	}
	if ps.BatchOccupancy != 1.0 {
		t.Errorf("sequential occupancy %v, want exactly 1.0 (no co-pending partners)", ps.BatchOccupancy)
	}
}

// TestBatchingAnswersIdenticalUnderContention drives the same workload
// slice through two concurrent serving runs — batching on and off — and
// requires byte-identical answer text: coalescing may only move virtual
// time, never results.
func TestBatchingAnswersIdenticalUnderContention(t *testing.T) {
	run := func(batching bool) []string {
		opts := []Option{WithDataset("sports"), WithSize(200), WithStrictChecks()}
		if batching {
			opts = append(opts, WithBatching())
		}
		sys, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		queries := workload.Generate(sys.Dataset, 1, 42)[:4]
		type slot struct {
			text string
			err  error
		}
		out := make([]slot, len(queries))
		done := make(chan int, len(queries))
		for i, q := range queries {
			go func(i int, text string) {
				ans, err := sys.Query(context.Background(), text)
				if err != nil {
					out[i] = slot{err: err}
				} else {
					out[i] = slot{text: ans.Text}
				}
				done <- i
			}(i, q.Text)
		}
		for range queries {
			<-done
		}
		lines := make([]string, len(queries))
		for i, s := range out {
			if s.err != nil {
				t.Fatalf("query %d: %v", i, s.err)
			}
			lines[i] = queries[i].ID + "\t" + s.text
		}
		return lines
	}
	on, off := run(true), run(false)
	for i := range on {
		if on[i] != off[i] {
			t.Errorf("answer %d diverged under batching:\n  on:  %s\n  off: %s", i, on[i], off[i])
		}
	}
}
