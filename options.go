package unify

import (
	"fmt"
	"time"

	"unify/internal/corpus"
	"unify/internal/docstore"
	"unify/internal/faults"
	"unify/internal/llm"
	"unify/internal/optimizer"
)

// Option configures system construction for New.
type Option func(*openOptions)

// openOptions collects construction state: the Config plus the inputs the
// legacy Open* constructors took as positional arguments.
type openOptions struct {
	cfg     Config
	ds      *corpus.Dataset
	planner llm.Client
	worker  llm.Client
}

// WithConfig seeds construction from a full Config; later options
// override individual fields.
func WithConfig(cfg Config) Option {
	return func(o *openOptions) { o.cfg = cfg }
}

// WithDataset selects a built-in synthetic corpus: "sports", "ai", "law",
// "wiki".
func WithDataset(name string) Option {
	return func(o *openOptions) { o.cfg.Dataset = name }
}

// WithSize overrides the corpus document count (0 = the paper's size).
func WithSize(n int) Option {
	return func(o *openOptions) { o.cfg.Size = n }
}

// WithCorpus supplies an already-generated dataset, bypassing corpus
// generation.
func WithCorpus(ds *corpus.Dataset) Option {
	return func(o *openOptions) { o.ds = ds }
}

// WithClients supplies caller-provided model clients (the extension point
// for real LLM backends).
func WithClients(planner, worker llm.Client) Option {
	return func(o *openOptions) { o.planner, o.worker = planner, worker }
}

// WithCacheBytes bounds the shared semantic cache; negative disables it.
func WithCacheBytes(n int64) Option {
	return func(o *openOptions) { o.cfg.CacheBytes = n }
}

// WithSlots sets the machine model's LLM server slots (paper: 4).
func WithSlots(n int) Option {
	return func(o *openOptions) { o.cfg.Slots = n }
}

// WithBatchSize sets the per-invocation document batch size.
func WithBatchSize(n int) Option {
	return func(o *openOptions) { o.cfg.BatchSize = n }
}

// WithMachines sets the simulated cluster width: M machines of Slots LLM
// slots each on one shared virtual clock, with the corpus partitioned
// into M shards (0 or 1 = the paper's single machine).
func WithMachines(n int) Option {
	return func(o *openOptions) { o.cfg.Machines = n }
}

// WithBatching enables cross-query continuous batching of operator LLM
// calls: compatible per-document calls from different queries co-pending
// on the shared pool coalesce into one batched invocation occupying a
// single slot. Answers are byte-identical with batching on or off; only
// schedules and costs change. Off by default.
func WithBatching() Option {
	return func(o *openOptions) { o.cfg.Batching = true }
}

// WithBatchWindow sets the virtual-time hold-the-door window within which
// compatible calls may join a freshly granted batch (0 = the default;
// implies nothing unless WithBatching is set).
func WithBatchWindow(d time.Duration) Option {
	return func(o *openOptions) { o.cfg.BatchWindow = d }
}

// WithBatchFairnessCap bounds a multi-member batch's duration so a heavy
// scan cannot grow invocations that starve light queries (0 = the
// default; negative disables the cap).
func WithBatchFairnessCap(d time.Duration) Option {
	return func(o *openOptions) { o.cfg.BatchFairnessCap = d }
}

// WithMaxBatch bounds the number of calls coalesced into one batched
// invocation (0 = the default).
func WithMaxBatch(n int) Option {
	return func(o *openOptions) { o.cfg.MaxBatch = n }
}

// WithViews enables materialized semantic views: per-document operator
// results persist as content-hash-keyed columns and repeated semantic
// work is served from the view instead of the model. Answers are
// byte-identical with views on or off; view rows survive ingestion for
// unchanged documents. Off by default.
func WithViews() Option {
	return func(o *openOptions) { o.cfg.Views = true }
}

// WithPartitioner overrides the corpus shard assignment policy (nil =
// hash partitioning by document id). Only consulted when WithMachines
// selects a multi-machine cluster.
func WithPartitioner(p docstore.Partitioner) Option {
	return func(o *openOptions) { o.cfg.Partitioner = p }
}

// WithMode selects the optimizer strategy for the whole system; see
// WithModeOverride for a per-query override.
func WithMode(m optimizer.Mode) Option {
	return func(o *openOptions) { o.cfg.Mode = m }
}

// WithPlannerParams sets the logical planner's hyper-parameters (paper
// defaults: K=5, NC=3, Tau=0.75).
func WithPlannerParams(k, nc int, tau float64) Option {
	return func(o *openOptions) { o.cfg.K, o.cfg.NC, o.cfg.Tau = k, nc, tau }
}

// WithSCEBuckets sets the importance-function resolution.
func WithSCEBuckets(n int) Option {
	return func(o *openOptions) { o.cfg.SCEBuckets = n }
}

// WithTrainSCE learns the importance function at open time (the paper's
// offline phase).
func WithTrainSCE() Option {
	return func(o *openOptions) { o.cfg.TrainSCE = true }
}

// WithSim overrides the simulated model configuration (noise, speed).
func WithSim(cfg llm.SimConfig) Option {
	return func(o *openOptions) { c := cfg; o.cfg.Sim = &c }
}

// WithFaultPlan injects seeded deterministic faults into the worker
// client (the failure-testing harness).
func WithFaultPlan(p *faults.Plan) Option {
	return func(o *openOptions) { o.cfg.FaultPlan = p }
}

// WithRetries bounds retries per worker call after transient failures.
func WithRetries(n int) Option {
	return func(o *openOptions) { o.cfg.MaxRetries = n }
}

// WithHedgeAfter hedges worker calls slower than the threshold.
func WithHedgeAfter(d time.Duration) Option {
	return func(o *openOptions) { o.cfg.HedgeAfter = d }
}

// WithNodeErrorBudget lets each operator absorb up to n per-batch LLM
// failures by skipping the affected documents.
func WithNodeErrorBudget(n int) Option {
	return func(o *openOptions) { o.cfg.NodeErrorBudget = n }
}

// WithReplanThreshold enables dynamic replanning above the given
// deviation ratio (values <= 1 disable it).
func WithReplanThreshold(r float64) Option {
	return func(o *openOptions) { o.cfg.ReplanThreshold = r }
}

// WithStrictChecks turns on the internal/check invariant checker: every
// plan, pool schedule, and answer is validated and violations fail the
// query with diagnostics. On in all tests; off by default in production.
func WithStrictChecks() Option {
	return func(o *openOptions) { o.cfg.StrictChecks = true }
}

// WithTraceRetention bounds the query-history trace store: at most
// maxTraces retained traces of at most maxSpans spans each (0 selects
// the defaults). A negative maxTraces disables trace retention.
func WithTraceRetention(maxTraces, maxSpans int) Option {
	return func(o *openOptions) {
		o.cfg.MaxTraces = maxTraces
		o.cfg.MaxTraceSpans = maxSpans
	}
}

// WithSlowQueryVTime logs every query whose total virtual time meets the
// threshold as one structured slow-query record (<= 0 disables the log).
func WithSlowQueryVTime(d time.Duration) Option {
	return func(o *openOptions) { o.cfg.SlowQueryVTime = d }
}

// New builds a system from functional options:
//
//	sys, err := unify.New(unify.WithDataset("sports"), unify.WithSize(500))
//
// With no options it opens the paper's default configuration. New
// subsumes the deprecated Open/OpenDataset/OpenWithClients constructors.
func New(opts ...Option) (*System, error) {
	var o openOptions
	for _, opt := range opts {
		opt(&o)
	}
	o.cfg.defaults()
	ds := o.ds
	if ds == nil {
		size := o.cfg.Size
		if size == 0 {
			size = corpus.DefaultSize(o.cfg.Dataset)
		}
		var err error
		ds, err = corpus.GenerateN(o.cfg.Dataset, size)
		if err != nil {
			return nil, err
		}
	}
	planner, worker := o.planner, o.worker
	if planner == nil || worker == nil {
		simCfg := llm.DefaultSimConfig()
		if o.cfg.Sim != nil {
			simCfg = *o.cfg.Sim
		}
		if planner == nil {
			plannerCfg := simCfg
			plannerCfg.Profile = llm.PlannerProfile()
			planner = llm.NewSim(plannerCfg)
		}
		if worker == nil {
			workerCfg := simCfg
			workerCfg.Profile = llm.WorkerProfile()
			worker = llm.NewSim(workerCfg)
		}
	}
	return open(ds, o.cfg, planner, worker)
}

// Language selects the query frontend: the natural-language route
// through the LLM planner, or the USQL typed dialect compiled directly
// to the logical DAG without any planner calls.
type Language int

// Query languages.
const (
	// LangAuto detects the language per query: statements whose first
	// token is SELECT parse as USQL, everything else plans as natural
	// language.
	LangAuto Language = iota
	// LangNL forces the natural-language planner route.
	LangNL
	// LangUSQL forces the USQL parser route; queries that do not parse
	// fail instead of falling back to the planner.
	LangUSQL
)

// String renders the wire form used by the server's lang field.
func (l Language) String() string {
	switch l {
	case LangNL:
		return "nl"
	case LangUSQL:
		return "usql"
	default:
		return "auto"
	}
}

// ParseLanguage parses the wire form of a Language ("" means auto).
func ParseLanguage(s string) (Language, error) {
	switch s {
	case "", "auto":
		return LangAuto, nil
	case "nl":
		return LangNL, nil
	case "usql":
		return LangUSQL, nil
	default:
		return LangAuto, fmt.Errorf("unknown query language %q (use auto, nl, or usql)", s)
	}
}

// QueryOptions carries per-query execution options; construct it through
// QueryOption values passed to System.Query or System.Plan.
type QueryOptions struct {
	// Timeout bounds the query end to end (queue wait included); zero
	// means no per-query deadline.
	Timeout time.Duration
	// Priority breaks slot-grant ties on the shared pool: queries with
	// higher priority are granted slots first at equal ready times.
	Priority int
	// Analyze captures the query's full span tree in Answer.Trace
	// (EXPLAIN ANALYZE) even when the context carries no tracer.
	Analyze bool
	// Mode, when non-nil, overrides the optimizer strategy for this
	// query only.
	Mode *optimizer.Mode
	// Language selects the query frontend (default LangAuto).
	Language Language
}

// QueryOption configures one query.
type QueryOption func(*QueryOptions)

// WithTimeout bounds the query end to end.
func WithTimeout(d time.Duration) QueryOption {
	return func(o *QueryOptions) { o.Timeout = d }
}

// WithPriority favors this query in slot-grant tie-breaks (higher wins).
func WithPriority(p int) QueryOption {
	return func(o *QueryOptions) { o.Priority = p }
}

// WithAnalyze captures the query's span tree in Answer.Trace.
func WithAnalyze() QueryOption {
	return func(o *QueryOptions) { o.Analyze = true }
}

// WithModeOverride overrides the optimizer strategy for this query only.
func WithModeOverride(m optimizer.Mode) QueryOption {
	return func(o *QueryOptions) { o.Mode = &m }
}

// WithLanguage pins the query frontend instead of auto-detecting it.
func WithLanguage(l Language) QueryOption {
	return func(o *QueryOptions) { o.Language = l }
}

func buildQueryOptions(opts []QueryOption) QueryOptions {
	var o QueryOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}
